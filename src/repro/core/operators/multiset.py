"""The eight fundamental multiset operators (Section 3.2.1).

⊎ (additive union), SET, SET_APPLY, GRP, DE, − (difference), × (cartesian
product with duplicates), and SET_COLLAPSE.  SET_APPLY additionally
supports the *typed* form introduced in Section 4 for overridden-method
processing: given a type filter, only occurrences whose exact type is in
the filter are processed; all others are ignored (dropped), so that a ⊎
of typed SET_APPLYs over the relevant types reconstructs the full
result.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Union

from ..expr import AlgebraError, EvalContext, Expr
from ..values import DNE, MultiSet, Ref, Tup, is_null


def exact_type_of(value: Any, ctx: EvalContext) -> Optional[str]:
    """The exact (most specific) type of an occurrence, for dispatch.

    Refs ask the store first (migration may have changed the recorded
    type), then fall back to the type carried on the Ref.  Tuples report
    their declared type name.  Anything else has no exact type.
    """
    if isinstance(value, Ref):
        if ctx.store is not None:
            recorded = ctx.store.exact_type(value.oid)
            if recorded is not None:
                return recorded
        return value.type_name
    if isinstance(value, Tup):
        return value.type_name
    return None


class AddUnion(Expr):
    """⊎ — additive union: result cardinalities are summed."""

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, MultiSet) or not isinstance(rhs, MultiSet):
            raise AlgebraError("⊎ needs two multisets")
        return lhs.add_union(rhs)

    def describe(self) -> str:
        return "(%s ⊎ %s)" % (self.left.describe(), self.right.describe())


class SetCreate(Expr):
    """SET — wrap any structure in a singleton multiset."""

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        return MultiSet([value])

    def describe(self) -> str:
        return "SET(%s)" % self.source.describe()


def _normalize_filter(type_filter) -> Optional[FrozenSet[str]]:
    if type_filter is None:
        return None
    if isinstance(type_filter, str):
        return frozenset([type_filter])
    return frozenset(type_filter)


class SetApply(Expr):
    """SET_APPLY — apply an algebraic expression to every occurrence.

    The body is evaluated once per *occurrence* (duplicates included),
    with the occurrence bound to INPUT; results that come back ``dne``
    vanish from the output multiset (null discipline), which is exactly
    how σ is derived from SET_APPLY ∘ COMP.

    ``type_filter`` (Section 4) restricts processing to occurrences whose
    *exact* type is one of the given names; other occurrences are ignored
    entirely.  An occurrence with no determinable exact type never
    matches a filter.
    """

    _fields = ("body", "source", "type_filter")
    _binding_fields = ("body",)

    def __init__(self, body: Expr, source: Expr,
                 type_filter: Union[str, FrozenSet[str], None] = None):
        self.body = body
        self.source = source
        self.type_filter = _normalize_filter(type_filter)

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        collection = self.source.evaluate(input_value, ctx)
        if is_null(collection):
            return collection
        if not isinstance(collection, MultiSet):
            raise AlgebraError(
                "SET_APPLY needs a multiset input, got %r" % (collection,))
        tally: Dict[Any, int] = {}
        for element, count in collection.items():
            ctx.tick("elements_scanned", count)
            if self.type_filter is not None:
                exact = exact_type_of(element, ctx)
                if exact not in self.type_filter:
                    continue
            ctx.tick("set_apply_elements", count)
            # The body is a function of the occurrence value alone, so one
            # evaluation covers all duplicates of the element.
            result = self.body.evaluate(element, ctx)
            if result is DNE:
                continue
            tally[result] = tally.get(result, 0) + count
        return MultiSet(counts=tally)

    def describe(self) -> str:
        if self.type_filter is not None:
            return "SET_APPLY[%s; %s](%s)" % (
                "/".join(sorted(self.type_filter)), self.body.describe(),
                self.source.describe())
        return "SET_APPLY[%s](%s)" % (self.body.describe(),
                                      self.source.describe())


class Grp(Expr):
    """GRP — partition a multiset into equivalence classes.

    Each occurrence is keyed by the value of the grouping expression
    (evaluated with the occurrence as INPUT); the result is a multiset of
    pairwise-disjoint multisets, one per distinct key.  Occurrences whose
    key is ``dne`` are dropped (they belong to no group); ``unk`` keys
    form their own single group.
    """

    _fields = ("by", "source")
    _binding_fields = ("by",)

    def __init__(self, by: Expr, source: Expr):
        self.by = by
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        collection = self.source.evaluate(input_value, ctx)
        if is_null(collection):
            return collection
        if not isinstance(collection, MultiSet):
            raise AlgebraError("GRP needs a multiset input")
        groups: Dict[Any, Dict[Any, int]] = {}
        for element, count in collection.items():
            ctx.tick("elements_scanned", count)
            ctx.tick("grp_elements", count)
            key = self.by.evaluate(element, ctx)
            if key is DNE:
                continue
            bucket = groups.setdefault(key, {})
            bucket[element] = bucket.get(element, 0) + count
        return MultiSet(
            [MultiSet(counts=bucket) for bucket in groups.values()])

    def describe(self) -> str:
        return "GRP[%s](%s)" % (self.by.describe(), self.source.describe())


class DE(Expr):
    """DE — duplicate elimination: every cardinality becomes 1.

    The work counter charges one comparison-unit per input *occurrence*,
    matching the paper's discussion of where DE should sit relative to
    joins and grouping (Example 1 of Section 5).
    """

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        collection = self.source.evaluate(input_value, ctx)
        if is_null(collection):
            return collection
        if not isinstance(collection, MultiSet):
            raise AlgebraError("DE needs a multiset input")
        ctx.tick("elements_scanned", len(collection))
        ctx.tick("de_elements", len(collection))
        return collection.dedup()

    def describe(self) -> str:
        return "DE(%s)" % self.source.describe()


class Diff(Expr):
    """− — multiset difference: cardinalities subtract, floored at 0."""

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, MultiSet) or not isinstance(rhs, MultiSet):
            raise AlgebraError("− needs two multisets")
        return lhs.difference(rhs)

    def describe(self) -> str:
        return "(%s − %s)" % (self.left.describe(), self.right.describe())


class Cross(Expr):
    """× — cartesian product preserving duplicates.

    The result is a multiset of 2-tuples with fields ``field1`` and
    ``field2``, matching the appendix's rel_join derivation.
    """

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, MultiSet) or not isinstance(rhs, MultiSet):
            raise AlgebraError("× needs two multisets")
        ctx.tick("cross_pairs", len(lhs) * len(rhs))
        return lhs.cross(rhs)

    def describe(self) -> str:
        return "(%s × %s)" % (self.left.describe(), self.right.describe())


class SetCollapse(Expr):
    """SET_COLLAPSE — ⊎ of all member multisets of a multiset."""

    _fields = ("source",)

    def __init__(self, source: Expr):
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        collection = self.source.evaluate(input_value, ctx)
        if is_null(collection):
            return collection
        if not isinstance(collection, MultiSet):
            raise AlgebraError("SET_COLLAPSE needs a multiset input")
        return collection.collapse()

    def describe(self) -> str:
        return "SET_COLLAPSE(%s)" % self.source.describe()
