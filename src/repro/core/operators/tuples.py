"""The four tuple operators (Section 3.2.2): π, TUP_CAT, TUP_EXTRACT, TUP.

All four operate on a *single tuple*, not on a set of tuples — the
many-sortedness of the algebra means set-at-a-time behaviour comes from
wrapping these in SET_APPLY.  π is expressible via TUP/TUP_CAT/
TUP_EXTRACT and hence not primitive in the "indispensable" sense, but it
is provided directly, as in the paper.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..expr import AlgebraError, EvalContext, Expr
from ..values import Tup, is_null


class Pi(Expr):
    """π — projection on a single tuple.

    Keeps the named fields (in the order given) and still yields a
    tuple, unlike TUP_EXTRACT which unwraps a single field.
    """

    _fields = ("names", "source")

    def __init__(self, names: Sequence[str], source: Expr):
        self.names = tuple(names)
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Tup):
            raise AlgebraError("π needs a tuple input, got %r" % (value,))
        return value.project(self.names)

    def describe(self) -> str:
        return "π[%s](%s)" % (",".join(self.names), self.source.describe())


class TupCat(Expr):
    """TUP_CAT — concatenate two tuples into one."""

    _fields = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        lhs = self.left.evaluate(input_value, ctx)
        rhs = self.right.evaluate(input_value, ctx)
        if is_null(lhs):
            return lhs
        if is_null(rhs):
            return rhs
        if not isinstance(lhs, Tup) or not isinstance(rhs, Tup):
            raise AlgebraError("TUP_CAT needs two tuples")
        return lhs.concat(rhs)

    def describe(self) -> str:
        return "TUP_CAT(%s, %s)" % (self.left.describe(), self.right.describe())


class TupExtract(Expr):
    """TUP_EXTRACT — return a single field *as a structure* (unwrapped)."""

    _fields = ("field", "source")

    def __init__(self, field: str, source: Expr):
        self.field = field
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        if not isinstance(value, Tup):
            raise AlgebraError(
                "TUP_EXTRACT(%s) needs a tuple input, got %r"
                % (self.field, value))
        return value[self.field]

    def describe(self) -> str:
        return "%s.%s" % (self.source.describe(), self.field)


class TupCreate(Expr):
    """TUP — wrap any structure in a unary tuple.

    The paper leaves the field name implicit; we require one so the
    result is addressable by TUP_EXTRACT (defaulting to ``f1``).
    """

    _fields = ("field", "source")

    def __init__(self, field: str = "f1", source: Expr = None):
        if source is None:
            raise AlgebraError("TUP needs a source expression")
        self.field = field
        self.source = source

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        value = self.source.evaluate(input_value, ctx)
        if is_null(value):
            return value
        return Tup({self.field: value})

    def describe(self) -> str:
        return "TUP[%s](%s)" % (self.field, self.source.describe())
