"""Schema digraphs for algebra structures.

Section 3.1 of the paper defines a *structure* as a pair (S, I) where S is
a schema and I is an instance.  A schema is a labelled digraph whose nodes
are type constructors — ``set``, ``tup``, ``arr``, ``ref``, or ``val`` —
and whose edges mean "component of".  Four well-formedness conditions
apply:

  (i)   "val" nodes have no components;
  (ii)  a node with no components is a "val" or "tup" node (the empty
        tuple type is legal);
  (iii) "arr", "set", and "ref" nodes have exactly one component
        (homogeneity, modulo inheritance);
  (iv)  deref(S) — S with edges out of "ref" nodes removed — is a forest,
        so every cycle passes through a "ref" node.

Because of (iv), a schema reachable without crossing a ref edge is a tree;
we represent schemas as trees whose ref nodes name their *target* schema
rather than embedding it, which makes cyclic schemas (Employee.manager:
ref Employee) representable and finite.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .values import Arr, MultiSet, Null, Ref, Tup, is_scalar

#: Legal node kinds.
NODE_KINDS = ("val", "tup", "set", "arr", "ref")

#: Base name marking a "nothing known" component — the inferred element
#: of an empty collection.  The static checkers treat such nodes as the
#: unknown ("any") schema rather than as a genuine scalar.
UNKNOWN_NAME = "_unknown_"

_anon_counter = itertools.count(1)


def _fresh_name(kind: str) -> str:
    return "_%s_%d" % (kind, next(_anon_counter))


class SchemaError(ValueError):
    """A schema violates one of the paper's well-formedness conditions."""


class SchemaNode:
    """One node of a schema digraph.

    Attributes
    ----------
    kind:
        One of ``val``, ``tup``, ``set``, ``arr``, ``ref``.
    name:
        The unique type name of the node.  Auto-generated when anonymous.
    children:
        Component schemas.  Tuples hold one child per field (see
        ``field_names``); set/arr/ref nodes hold exactly one; val nodes
        none.
    field_names:
        For ``tup`` nodes, the component (field) names, parallel to
        ``children``.
    target:
        For ``ref`` nodes, the *name* of the referenced schema.  The child
        of a ref node is resolved lazily through a :class:`SchemaCatalog`
        (or given inline for acyclic cases).
    scalar_type:
        For ``val`` nodes, an optional python type restriction
        (int/float/str/bool) used by domain checking; None admits any
        scalar.
    """

    __slots__ = ("kind", "name", "children", "field_names", "target",
                 "scalar_type", "fixed_length", "base_name")

    def __init__(self, kind: str, name: str = None, children: List["SchemaNode"] = None,
                 field_names: List[str] = None, target: str = None,
                 scalar_type: type = None, fixed_length: int = None,
                 base_name: str = None):
        if kind not in NODE_KINDS:
            raise SchemaError("unknown node kind %r" % kind)
        self.kind = kind
        self.name = name or _fresh_name(kind)
        # The *semantic* type name (survives clone-renaming); used for
        # inheritance lookups (DOM) while ``name`` stays unique per tree.
        self.base_name = base_name or name
        self.children = list(children or [])
        self.field_names = list(field_names or [])
        self.target = target
        self.scalar_type = scalar_type
        self.fixed_length = fixed_length
        self._check_local()

    def _check_local(self) -> None:
        if self.kind == "val":
            if self.children:
                raise SchemaError(
                    "condition (i): val node %r must have no components" % self.name)
        elif self.kind == "tup":
            if len(self.children) != len(self.field_names):
                raise SchemaError(
                    "tup node %r: %d children but %d field names"
                    % (self.name, len(self.children), len(self.field_names)))
            if len(set(self.field_names)) != len(self.field_names):
                raise SchemaError(
                    "tup node %r has duplicate field names" % self.name)
        elif self.kind in ("set", "arr"):
            if len(self.children) != 1:
                raise SchemaError(
                    "condition (iii): %s node %r must have exactly one "
                    "component, has %d" % (self.kind, self.name, len(self.children)))
        elif self.kind == "ref":
            # A ref node names its target; an inline child is allowed for
            # acyclic schemas but never both absent.
            if not self.target and len(self.children) != 1:
                raise SchemaError(
                    "condition (iii): ref node %r needs a target name or "
                    "exactly one inline component" % self.name)
            if self.target and self.children:
                raise SchemaError(
                    "ref node %r has both a target name and an inline "
                    "component" % self.name)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def val(scalar_type: type = None, name: str = None) -> "SchemaNode":
        return SchemaNode("val", name=name, scalar_type=scalar_type)

    @staticmethod
    def tup(fields: Dict[str, "SchemaNode"] = None, name: str = None) -> "SchemaNode":
        fields = fields or {}
        return SchemaNode("tup", name=name,
                          children=list(fields.values()),
                          field_names=list(fields.keys()))

    @staticmethod
    def set_of(child: "SchemaNode", name: str = None) -> "SchemaNode":
        return SchemaNode("set", name=name, children=[child])

    @staticmethod
    def arr_of(child: "SchemaNode", name: str = None,
               fixed_length: int = None) -> "SchemaNode":
        return SchemaNode("arr", name=name, children=[child],
                          fixed_length=fixed_length)

    @staticmethod
    def ref_to(target, name: str = None) -> "SchemaNode":
        """Reference node; *target* is a type name or an inline SchemaNode."""
        if isinstance(target, SchemaNode):
            return SchemaNode("ref", name=name, children=[target])
        return SchemaNode("ref", name=name, target=target)

    # -- structure ------------------------------------------------------

    @property
    def component(self) -> "SchemaNode":
        """The single component of a set/arr/ref node."""
        if self.kind not in ("set", "arr", "ref"):
            raise SchemaError("%s node has no single component" % self.kind)
        if self.kind == "ref" and self.target is not None:
            raise SchemaError(
                "ref node %r targets %r by name; resolve it through a "
                "catalog" % (self.name, self.target))
        return self.children[0]

    def field(self, name: str) -> "SchemaNode":
        """The component schema of tuple field *name*."""
        if self.kind != "tup":
            raise SchemaError("field() on non-tuple node %r" % self.name)
        for fname, child in zip(self.field_names, self.children):
            if fname == name:
                return child
        raise SchemaError("tuple schema %r has no field %r" % (self.name, name))

    def fields(self) -> Iterator[Tuple[str, "SchemaNode"]]:
        if self.kind != "tup":
            raise SchemaError("fields() on non-tuple node %r" % self.name)
        return iter(zip(self.field_names, self.children))

    def walk(self) -> Iterator["SchemaNode"]:
        """Pre-order walk, not following ref targets (deref(S) view)."""
        yield self
        if self.kind == "ref" and self.target is not None:
            return
        for child in self.children:
            for node in child.walk():
                yield node

    def validate(self) -> None:
        """Re-check all local conditions plus node-name uniqueness.

        Condition (iv) — deref(S) is a forest — holds by construction for
        tree-shaped schemas with named ref targets, but inline ref children
        could still share nodes; we verify no node object is reachable
        twice without crossing a ref edge.
        """
        seen_ids = set()
        names = {}
        for node in self.walk():
            node._check_local()
            if id(node) in seen_ids:
                raise SchemaError(
                    "condition (iv): node %r is reachable twice without "
                    "crossing a ref edge (deref(S) is not a forest)" % node.name)
            seen_ids.add(id(node))
            if node.name in names and names[node.name] is not node:
                raise SchemaError("duplicate node name %r" % node.name)
            names[node.name] = node

    def clone(self, fresh_names: bool = True) -> "SchemaNode":
        """A deep copy of this schema tree.

        With ``fresh_names`` (default) every node gets a new unique name,
        so the copy can be embedded as a component of another schema
        without violating node-name uniqueness or the forest condition.
        Ref targets are carried by *name*, so they still resolve to the
        canonical registered schema.
        """
        children = [c.clone(fresh_names) for c in self.children]
        return SchemaNode(
            self.kind,
            name=None if fresh_names else self.name,
            children=children,
            field_names=list(self.field_names),
            target=self.target,
            scalar_type=self.scalar_type,
            fixed_length=self.fixed_length,
            base_name=self.base_name)

    # -- comparison & display --------------------------------------------

    def structurally_equal(self, other: "SchemaNode") -> bool:
        """Structural equality, ignoring auto-generated names."""
        if self.kind != other.kind:
            return False
        if self.kind == "val":
            return self.scalar_type == other.scalar_type
        if self.kind == "ref":
            if (self.target is None) != (other.target is None):
                return False
            if self.target is not None:
                return self.target == other.target
        if self.kind == "tup" and self.field_names != other.field_names:
            return False
        if self.kind == "arr" and self.fixed_length != other.fixed_length:
            return False
        if len(self.children) != len(other.children):
            return False
        return all(a.structurally_equal(b)
                   for a, b in zip(self.children, other.children))

    def describe(self) -> str:
        """A compact one-line type description, EXTRA-flavoured."""
        if self.kind == "val":
            return self.scalar_type.__name__ if self.scalar_type else "val"
        if self.kind == "tup":
            inner = ", ".join("%s: %s" % (n, c.describe())
                              for n, c in zip(self.field_names, self.children))
            return "(%s)" % inner
        if self.kind == "set":
            return "{ %s }" % self.children[0].describe()
        if self.kind == "arr":
            if self.fixed_length is not None:
                return "array [1..%d] of %s" % (
                    self.fixed_length, self.children[0].describe())
            return "array of %s" % self.children[0].describe()
        if self.kind == "ref":
            if self.target is not None:
                return "ref %s" % self.target
            return "ref %s" % self.children[0].describe()
        raise AssertionError(self.kind)

    def __repr__(self) -> str:
        return "Schema<%s: %s>" % (self.name, self.describe())


class SchemaCatalog:
    """Resolves named schemas, letting ref nodes form cycles.

    The catalog is the "type hierarchy by name" backdrop against which a
    schema with ``ref T`` edges is interpreted.
    """

    def __init__(self):
        self._by_name: Dict[str, SchemaNode] = {}

    def register(self, schema: SchemaNode, name: str = None) -> SchemaNode:
        key = name or schema.name
        if key in self._by_name and self._by_name[key] is not schema:
            raise SchemaError("schema name %r already registered" % key)
        self._by_name[key] = schema
        return schema

    def resolve(self, name: str) -> SchemaNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError("no schema registered under %r" % name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def target_of(self, ref_node: SchemaNode) -> SchemaNode:
        """The component schema of a ref node, resolving named targets."""
        if ref_node.kind != "ref":
            raise SchemaError("target_of() on non-ref node %r" % ref_node.name)
        if ref_node.target is not None:
            return self.resolve(ref_node.target)
        return ref_node.children[0]


def _merge_inferred(a: Optional["SchemaNode"],
                    b: "SchemaNode") -> "SchemaNode":
    """Unify two inferred component schemas.

    Inference treats an unconstrained ``val`` node (no scalar type) as
    "nothing known yet" — the inference of an *empty* nested collection
    — so it yields to any more specific schema.  Scalar-type conflicts
    widen to the unconstrained scalar; same-kind constructors merge
    componentwise.  Genuinely mixed sorts (condition (iii) violations)
    keep the first schema — such data is outside the model anyway.
    """
    if a is None:
        return b
    if a.kind == "val" and a.scalar_type is None:
        return b
    if b.kind == "val" and b.scalar_type is None:
        return a
    if a.kind != b.kind:
        return a
    if a.kind == "val":
        if a.scalar_type is b.scalar_type:
            return a
        return SchemaNode.val()
    if a.kind in ("set", "arr"):
        merged = _merge_inferred(a.children[0], b.children[0])
        if a.kind == "set":
            return SchemaNode.set_of(merged)
        return SchemaNode.arr_of(merged)
    if a.kind == "tup":
        if a.field_names != b.field_names:
            return a
        return SchemaNode.tup(
            {name: _merge_inferred(ca, cb)
             for (name, ca), (_, cb) in zip(a.fields(), b.fields())},
            name=(a.base_name if a.base_name == b.base_name else None))
    return a  # refs: keep the first target


def infer_schema(value: Any, catalog: SchemaCatalog = None) -> SchemaNode:
    """Infer a structural schema from a runtime value.

    Multisets and arrays unify the inferred schemas of all their
    occurrences (homogeneity is assumed, per condition (iii), but empty
    nested collections are widened correctly); empty collections get an
    unconstrained ``val`` component.  Refs become ref nodes targeting
    the carried type name when available.
    """
    if is_scalar(value):
        return SchemaNode.val(type(value))
    if isinstance(value, Null):
        return SchemaNode.val(name=UNKNOWN_NAME)
    if isinstance(value, Tup):
        return SchemaNode.tup(
            {name: infer_schema(v, catalog) for name, v in value.fields},
            name=value.type_name)
    if isinstance(value, MultiSet):
        component = None
        for element in value.elements():
            component = _merge_inferred(component,
                                        infer_schema(element, catalog))
        return SchemaNode.set_of(component if component is not None
                                 else SchemaNode.val(name=UNKNOWN_NAME))
    if isinstance(value, Arr):
        component = None
        for element in value:
            component = _merge_inferred(component,
                                        infer_schema(element, catalog))
        return SchemaNode.arr_of(component if component is not None
                                 else SchemaNode.val(name=UNKNOWN_NAME))
    if isinstance(value, Ref):
        if value.type_name:
            return SchemaNode.ref_to(value.type_name)
        return SchemaNode.ref_to(SchemaNode.val())
    raise TypeError("cannot infer schema for %r" % (value,))
