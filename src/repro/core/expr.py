"""Algebraic expression trees and their evaluation machinery.

Every operator of the EXCESS algebra is an expression node.  A query is a
tree of such nodes whose leaves are named top-level database objects,
constants, or the distinguished ``INPUT`` symbol.

``INPUT`` plays two roles in the paper (Section 3.2):

* inside the subscript of SET_APPLY / ARR_APPLY / GRP it denotes, in
  turn, each occurrence of the operator's input collection;
* inside the subscript of COMP it denotes the entire structure being
  tested.

Both roles are the same mechanism here: certain operator fields are
*binding* fields — evaluating them rebinds ``INPUT`` — and those fields
are declared in ``_binding_fields`` so that transformation rules know not
to substitute through them.

Evaluation is side-effect-free except for REF (which allocates an object
in the context's store) and for the statistics counters used by the cost
model and the benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .values import DNE, UNK, Null, is_null


class AlgebraError(Exception):
    """An ill-typed or otherwise illegal algebraic evaluation."""


class EvalContext:
    """Everything an expression needs besides its INPUT binding.

    Parameters
    ----------
    database:
        Mapping of top-level object names to values (the ``create``\\ d
        persistent objects of EXTRA).
    store:
        An object store providing ``get(oid)`` and
        ``insert(value, type_name=None) -> Ref``; needed by DEREF / REF.
    functions:
        Registered scalar functions (the stand-in for E-language ADT
        functions), name → Python callable.
    methods:
        A method registry (see :mod:`repro.core.methods`) consulted by
        method-invocation expressions.
    """

    def __init__(self, database: Dict[str, Any] = None, store=None,
                 functions: Dict[str, Callable] = None, methods=None,
                 indexes=None):
        self.database = database if database is not None else {}
        self.store = store
        # Kept by reference (not copied) so functions registered on the
        # database after this context was created remain callable — a
        # session holds one context across many statements.
        self.functions = functions if functions is not None else {}
        self.methods = methods
        self.indexes = indexes
        self.stats: Dict[str, int] = {}
        #: Per-query OID → value cache used by the compiled engine's
        #: DEREF operator; created lazily, cleared by begin_query().
        self.deref_cache = None
        #: Optional :class:`repro.obs.Tracer`.  When set and enabled,
        #: ``evaluate`` records a span tree for the statement (one span
        #: per physical operator in the compiled engine).  None or a
        #: disabled tracer costs nothing — the check happens once per
        #: statement, never per element.
        self.tracer = None

    def tick(self, counter: str, amount: int = 1) -> None:
        """Bump a work counter (elements scanned, derefs, …)."""
        self.stats[counter] = self.stats.get(counter, 0) + amount

    def reset_stats(self) -> None:
        self.stats = {}

    def begin_query(self) -> None:
        """Start a fresh top-level query on this context.

        Resets the work counters (so ``.stats`` always describes one
        query, not a whole session) and empties the deref cache (whose
        contract is per-query: updates between statements must not serve
        stale objects).
        """
        self.stats = {}
        if self.deref_cache is not None:
            self.deref_cache.clear()
            if self.store is not None:
                self.deref_cache.version = getattr(self.store, "version",
                                                   None)

    def lookup(self, name: str) -> Any:
        try:
            return self.database[name]
        except KeyError:
            raise AlgebraError("no top-level object named %r" % name)

    def function(self, name: str) -> Callable:
        try:
            return self.functions[name]
        except KeyError:
            raise AlgebraError("no registered function %r" % name)


class Expr:
    """Base class for all algebra expression nodes.

    Subclasses declare ``_fields`` (constructor-argument names, in order)
    and optionally ``_binding_fields`` (the subset whose sub-expressions
    rebind INPUT).  Structural equality, hashing, child traversal, and
    rewriting all derive from these declarations.
    """

    _fields: Tuple[str, ...] = ()
    _binding_fields: Tuple[str, ...] = ()

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        raise NotImplementedError

    # -- generic plumbing -------------------------------------------------

    def _values(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, f) for f in self._fields)

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._values() == other._values()

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._values()))

    def __repr__(self) -> str:
        return self.describe()

    def describe(self) -> str:
        inner = ", ".join(
            v.describe() if isinstance(v, Expr) else repr(v)
            for v in self._values())
        return "%s(%s)" % (type(self).__name__, inner)

    def children(self) -> List["Expr"]:
        """Direct sub-expressions, binding or not.

        Predicate-valued fields (COMP subscripts) contribute their
        operand expressions, so tree-wide analyses (walk, determinism,
        parameter binding) see inside predicates too.
        """
        out = []
        for value in self._values():
            if isinstance(value, Expr):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                out.extend(v for v in value if isinstance(v, Expr))
            elif hasattr(value, "deep_exprs"):
                out.extend(value.deep_exprs())
        return out

    def replace(self, **updates: Any) -> "Expr":
        """A copy with the named fields replaced."""
        kwargs = {f: getattr(self, f) for f in self._fields}
        for name, value in updates.items():
            if name not in kwargs:
                raise KeyError("%s has no field %r" % (type(self).__name__, name))
            kwargs[name] = value
        return type(self)(**kwargs)

    def map_children(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """A copy with *fn* applied to every direct sub-expression."""
        updates = {}
        for field in self._fields:
            value = getattr(self, field)
            if isinstance(value, Expr):
                new = fn(value)
                if new is not value:
                    updates[field] = new
            elif isinstance(value, (list, tuple)):
                new_seq = [fn(v) if isinstance(v, Expr) else v for v in value]
                if any(a is not b for a, b in zip(new_seq, value)):
                    updates[field] = type(value)(new_seq) if isinstance(
                        value, tuple) else new_seq
        return self.replace(**updates) if updates else self

    def walk(self) -> Iterator["Expr"]:
        """Pre-order walk over the whole tree (including binding bodies)."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def size(self) -> int:
        """Number of operator nodes (used by search bounds)."""
        return sum(1 for _ in self.walk())

    def uses_input(self) -> bool:
        """Does this expression reference the *enclosing* INPUT binding?

        References inside binding fields do not count — they are rebound
        by their own operator.
        """
        if isinstance(self, Input):
            return True
        for field in self._fields:
            if field in self._binding_fields:
                continue
            value = getattr(self, field)
            if isinstance(value, Expr) and value.uses_input():
                return True
            if isinstance(value, (list, tuple)):
                if any(isinstance(v, Expr) and v.uses_input() for v in value):
                    return True
        return False


class Input(Expr):
    """The distinguished INPUT symbol (see module docstring)."""

    _fields = ()

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        if input_value is _UNBOUND:
            raise AlgebraError("INPUT used outside any binding operator")
        return input_value

    def describe(self) -> str:
        return "INPUT"


#: Sentinel used to catch INPUT references at top level.
_UNBOUND = object()


class Named(Expr):
    """A named, top-level database object (a ``create``\\ d entity)."""

    _fields = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        return ctx.lookup(self.name)

    def describe(self) -> str:
        return self.name


class Const(Expr):
    """A literal algebra value embedded in a query."""

    _fields = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        return self.value

    def describe(self) -> str:
        return repr(self.value)


class Func(Expr):
    """Application of a registered scalar function to argument expressions.

    This models EXCESS's E-written ADT functions and arithmetic.  Null
    arguments propagate: any ``dne`` argument yields ``dne``, else any
    ``unk`` yields ``unk``.
    """

    _fields = ("name", "args")

    def __init__(self, name: str, args: List[Expr]):
        self.name = name
        self.args = tuple(args)

    def evaluate(self, input_value: Any, ctx: EvalContext) -> Any:
        values = [arg.evaluate(input_value, ctx) for arg in self.args]
        if any(v is DNE for v in values):
            return DNE
        if any(v is UNK for v in values):
            return UNK
        ctx.tick("func_calls")
        return ctx.function(self.name)(*values)

    def describe(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(a.describe() for a in self.args))


def evaluate(expr: Expr, ctx: EvalContext, input_value: Any = _UNBOUND,
             mode: str = "interpreted", facts: Any = None,
             cost_model: Any = None, access_paths: str = "auto",
             analysis: Any = None, sanitize: bool = False,
             batch_size: "int | None" = None, parallel: int = 0) -> Any:
    """Evaluate a top-level expression.

    A bare INPUT at top level is an error unless *input_value* is given
    (method bodies are evaluated against a bound receiver, for example).

    ``mode`` selects the execution engine: ``"interpreted"`` (the
    recursive ``Expr.evaluate`` walk, one materialized value per node),
    ``"compiled"`` (the streaming engine of
    :mod:`repro.core.engine`, which lowers the tree once and pipelines
    occurrence pairs through fused physical operators), or
    ``"batched"`` (the same physical algebra exchanging columnar
    :class:`~repro.core.engine.batch.Batch` objects, ``batch_size``
    occurrence slots at a time).

    ``facts`` (compiled engines only) carries verified plan facts —
    e.g. duplicate-freedom from the static analysis layer — that the
    compiler may use as optimization licenses.

    ``cost_model`` and ``access_paths`` (compiled engines only) steer
    index-probe lowering — see :func:`repro.core.engine.compile_plan`.

    ``analysis`` is a :class:`~repro.core.analysis.absint.PlanAnalysis`
    over *expr* (node-identity keyed — analyze this exact tree).  With
    ``sanitize`` False its proven facts are folded into *facts* as
    engine licenses; with ``sanitize`` True the compiled engine instead
    *asserts* every fact at runtime, raising ``SanitizerError`` on any
    violation (an ``analysis`` is built from *ctx* on the fly if none
    is given).  The interpreter has no instrumentation points, so
    ``sanitize`` is a no-op under ``mode="interpreted"``.

    ``parallel`` >= 2 (batched mode only) partitions the leaf extent by
    the paper's OID-pool construction R(n) and runs the partitions
    across forked workers with a deterministic merge — see
    :mod:`repro.core.engine.partition`.  Plans the partitioner cannot
    prove safe fall back to serial batched execution; the sanitizer's
    whole-extent cardinality proofs do not distribute over partitions,
    so ``sanitize`` also forces serial.

    When ``ctx.tracer`` is set and enabled, a span tree for the run is
    attached under the tracer's cursor: per physical operator for the
    compiled engine, one root span for the interpreter.
    """
    tracer = getattr(ctx, "tracer", None)
    tracing = tracer is not None and tracer.enabled
    if mode in ("compiled", "batched"):
        if sanitize and analysis is None:
            from .analysis.absint import analyze
            analysis = analyze(expr, database=getattr(ctx, "database",
                                                      None))
        if analysis is not None and not sanitize:
            facts = analysis.extend_facts(facts)
        if mode == "batched":
            from .engine.batch import DEFAULT_BATCH_SIZE, compile_batch_plan
            size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
            plan = compile_batch_plan(expr, facts=facts, trace=tracing,
                                      cost_model=cost_model,
                                      access_paths=access_paths,
                                      sanitize=analysis if sanitize
                                      else None,
                                      batch_size=size)
            if parallel >= 2 and not sanitize:
                from .engine.partition import partition_plan
                plan = partition_plan(expr, plan, facts=facts,
                                      parallel=parallel, batch_size=size)
        else:
            from .engine import compile_plan
            plan = compile_plan(expr, facts=facts, trace=tracing,
                                cost_model=cost_model,
                                access_paths=access_paths,
                                sanitize=analysis if sanitize else None)
        if not tracing:
            return plan.execute(ctx, input_value)
        root = plan.trace_root
        tracer.attach(root)
        import time as _time
        cache = ctx.deref_cache
        hits0, misses0 = (cache.hits, cache.misses) if cache is not None \
            else (0, 0)
        started = _time.perf_counter()
        try:
            return plan.execute(ctx, input_value)
        finally:
            root.calls += 1
            root.wall += _time.perf_counter() - started
            cache = ctx.deref_cache
            if cache is not None:
                hits = cache.hits - hits0
                misses = cache.misses - misses0
                if hits or misses:
                    root.meta["deref_cache_hit_ratio"] = (
                        hits / (hits + misses))
    if mode != "interpreted":
        raise ValueError("unknown engine mode %r (use 'interpreted', "
                         "'compiled', or 'batched')" % (mode,))
    if not tracing:
        return expr.evaluate(input_value, ctx)
    from repro.obs import Span
    import time as _time
    root = Span("interpreted-plan", kind="plan", expr=expr)
    tracer.attach(root)
    started = _time.perf_counter()
    try:
        value = expr.evaluate(input_value, ctx)
    finally:
        root.calls += 1
        root.wall += _time.perf_counter() - started
    root.rows_out += 1
    from .values import MultiSet
    root.card_out += len(value) if isinstance(value, MultiSet) else 1
    return value


def substitute_input(expr: Expr, replacement: Expr) -> Expr:
    """Replace free occurrences of INPUT in *expr* with *replacement*.

    This implements the composition written E1(E2) in the paper's rules
    (e.g. rule 15, combining successive SET_APPLYs).  Occurrences inside
    binding fields are bound by their own operator and left alone, but
    the non-binding fields of those operators are still rewritten.
    """
    if isinstance(expr, Input):
        return replacement
    updates = {}
    for field in expr._fields:
        if field in expr._binding_fields:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            new = substitute_input(value, replacement)
            if new is not value:
                updates[field] = new
        elif isinstance(value, (list, tuple)):
            new_seq = [substitute_input(v, replacement)
                       if isinstance(v, Expr) else v for v in value]
            if any(a is not b for a, b in zip(new_seq, value)):
                updates[field] = tuple(new_seq) if isinstance(
                    value, tuple) else new_seq
    return expr.replace(**updates) if updates else expr


def propagate_null(value: Any) -> Optional[Null]:
    """Return the null to propagate if *value* is a null, else None."""
    if is_null(value):
        return value
    return None
