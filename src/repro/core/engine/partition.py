"""Partition-parallel execution over the paper's OID pools R(n).

Section 3.1 constructs object identity from disjoint integer pools: an
OID's decimal form starts with f(n) ones and a zero, so the pool — the
exact allocation type — is decodable from the value alone
(:func:`repro.core.oid.pool_code`).  That prefix is a natural,
deterministic shard key: partitioning an extent by pool keeps each
type's objects hash-spread across workers with no coordination and no
stored partition metadata.

:func:`partition_plan` wraps a compiled batch pipeline in that
partitioning.  At execution time the leaf extent is split into
``parallel`` deterministic sub-multisets; each runs the same compiled
plan in a forked worker against a context whose database overlays the
leaf name with its partition, and the parent merges in partition order:

* plain SET_APPLY chains merge by summing tallies (⊎ distributes over
  any partitioning of the input);
* DE runs locally in each worker, then the parent keeps the first
  occurrence across partitions — skipped entirely when the plan facts
  prove the chain duplicate-free (disjoint partitions of a
  duplicate-free stream cannot collide);
* GRP buckets locally by key and the parent merges buckets per key
  before building the group multisets.

Eligibility is decided statically and conservatively: the plan must be
a SET_APPLY chain (optionally under one DE or GRP) over a Named leaf,
built purely from value accessors, σ/π, DEREF and the multiset
operators.  Anything that allocates identity (REF), calls registered
functions or methods, or probes shared index state is refused and the
plan silently runs serial-batched — wrong-but-parallel is never an
option.  Workers therefore only *read* the shared store, so a forked
copy-on-write address space gives each worker a free consistent
snapshot; under the MVCC server the store is already a snapshot view.

Error transparency: if any partition raises, the parent discards all
partition work and re-runs the serial plan, so the surfaced exception
(and which of several potential errors surfaces first) is bit-identical
to serial execution.  Tracing also forces serial execution — spans are
per-process — while parallel runs report ``partitions`` /
``partition_max_rows`` through the ordinary stats counters.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..expr import EvalContext, Expr, Named, _UNBOUND
from ..oid import pool_code
from ..operators.arrays import ArrApply, ArrCreate, ArrExtract, SubArr
from ..operators.multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply,
                                  SetCollapse, SetCreate)
from ..operators.refs import Deref
from ..operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..predicates import And, Atom, Comp, Not, TruePred
from ..expr import Const, Input
from ..values import DNE, MultiSet, Ref
from .batch import DEFAULT_BATCH_SIZE, compile_batch_plan
from .compiler import Pipeline, PlanCompiler

#: Expression / predicate node types a partition worker may evaluate.
#: Everything here is a pure function of (input, store state).  REF is
#: excluded (it mints OIDs — generator state would diverge across
#: forks), as are Func / MethodCall (opaque registered code) and
#: IndexedTypeScan (shared index state).
_SAFE_TYPES = (Input, Const, Named, TupExtract, Pi, TupCat, TupCreate,
               Deref, Comp, Atom, And, Not, TruePred, SetApply, DE, Grp,
               AddUnion, Diff, Cross, SetCollapse, SetCreate, ArrCreate,
               ArrExtract, ArrApply, SubArr)


def _parallel_safe(node: Any) -> bool:
    if not isinstance(node, _SAFE_TYPES):
        return False
    for field in node._fields:
        value = getattr(node, field)
        if hasattr(value, "_fields"):
            if not _parallel_safe(value):
                return False
        elif isinstance(value, (list, tuple)):
            for item in value:
                if hasattr(item, "_fields") and not _parallel_safe(item):
                    return False
    return True


def _split(expr: Expr) -> Optional[Tuple[str, Expr, str]]:
    """Decompose *expr* into ``(merge_kind, chain, leaf_name)``.

    ``merge_kind`` is ``"apply"`` (plain chain — tally-sum merge),
    ``"de"`` or ``"grp"``.  The chain must be one or more SET_APPLYs
    over a Named leaf; a bare Named is not worth partitioning."""
    kind = "apply"
    if isinstance(expr, DE):
        kind, chain = "de", expr.source
    elif isinstance(expr, Grp):
        kind, chain = "grp", expr.source
    else:
        chain = expr
    node = chain
    if not isinstance(node, SetApply):
        return None
    while isinstance(node, SetApply):
        node = node.source
    if not isinstance(node, Named):
        return None
    return kind, chain, node.name


def partition_tally(collection: MultiSet,
                    nparts: int) -> List[Dict[Any, int]]:
    """Split a multiset into *nparts* deterministic tallies.

    Refs route by ``(pool_code(oid) - 1) % nparts`` so each type's
    extent spreads across workers (a pool is one type; routing whole
    pools to one worker would serialize single-type extents).  Values
    without a well-formed pool OID route by running position, which is
    deterministic because multiset iteration order is insertion order.
    """
    parts: List[Dict[Any, int]] = [{} for _ in range(nparts)]
    i = 0
    for element, count in collection.items():
        if type(element) is Ref:
            code = pool_code(element.oid)
            slot = (code - 1) % nparts if code > 0 else i % nparts
        else:
            slot = i % nparts
        parts[slot][element] = count
        i += 1
    return parts


class _Overlay:
    """A database view rebinding one name to a partition."""

    __slots__ = ("_base", "_name", "_value")

    def __init__(self, base: Any, name: str, value: Any) -> None:
        self._base = base
        self._name = name
        self._value = value

    def __getitem__(self, key: str) -> Any:
        if key == self._name:
            return self._value
        return self._base[key]

    def __contains__(self, key: str) -> bool:
        return key == self._name or key in self._base

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


class _PartitionError(Exception):
    """Internal: a worker failed; the parent re-runs serially."""


def _run_forked(worker: Callable[[int], Any], nparts: int) -> List[Any]:
    """Run ``worker(i)`` for each partition: 1..n-1 in forked children,
    0 in this process; results return in partition order.  Worker
    failures (or unpicklable payloads) raise :class:`_PartitionError`.
    """
    pipes: List[Tuple[int, int]] = []
    try:
        for i in range(1, nparts):
            rfd, wfd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Worker: compute, ship one pickled (status, payload)
                # frame, and _exit without running parent cleanup.
                os.close(rfd)
                try:
                    try:
                        payload = ("ok", worker(i))
                    except Exception as exc:
                        payload = ("err", exc)
                    try:
                        data = pickle.dumps(payload, protocol=4)
                    except Exception:
                        data = pickle.dumps(("err", None), protocol=4)
                    os.write(wfd, struct.pack(">Q", len(data)))
                    view = memoryview(data)
                    while view:
                        written = os.write(wfd, view[:65536])
                        view = view[written:]
                finally:
                    os._exit(0)
            os.close(wfd)
            pipes.append((pid, rfd))
        results: List[Any] = [None] * nparts
        try:
            results[0] = worker(0)
        except Exception as exc:
            raise _PartitionError() from exc
        for i, (pid, rfd) in enumerate(pipes, start=1):
            header = _read_exact(rfd, 8)
            if header is None:
                raise _PartitionError()
            (length,) = struct.unpack(">Q", header)
            data = _read_exact(rfd, length)
            if data is None:
                raise _PartitionError()
            status, payload = pickle.loads(data)
            if status != "ok":
                raise _PartitionError() from payload
            results[i] = payload
        return results
    finally:
        for pid, rfd in pipes:
            try:
                os.close(rfd)
            except OSError:
                pass
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = os.read(fd, min(remaining, 65536))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _run_serial(worker: Callable[[int], Any], nparts: int) -> List[Any]:
    try:
        return [worker(i) for i in range(nparts)]
    except Exception as exc:
        raise _PartitionError() from exc


class PartitionPlan:
    """A batch :class:`~.compiler.Pipeline` with R(n) partitioning.

    Quacks like a Pipeline (``execute``, ``explain``, ``notes``,
    ``trace_root``) so every entry point that handles compiled plans
    handles this one.  Serial fallback triggers at execution time for
    bound inputs, non-multiset leaves, tracing, and worker failure.
    """

    def __init__(self, expr: Expr, serial: Pipeline, merge_kind: str,
                 chain: Expr, leaf_name: str, parallel: int,
                 batch_size: int, facts: Any = None) -> None:
        self.expr = expr
        self.serial = serial
        self.merge_kind = merge_kind
        self.leaf_name = leaf_name
        self.parallel = parallel
        self.notes = list(serial.notes)
        self.notes.append("PARTITION[%s by R(n), %d way(s), %s merge]"
                          % (leaf_name, parallel, merge_kind))
        self.trace_root = serial.trace_root
        # The worker plan: the chain (never the DE/GRP wrapper for grp —
        # workers return keyed buckets).  Facts licenses survive
        # partitioning: each partition's stream is a sub-multiset of the
        # whole, and duplicate-freedom / emptiness are closed downward.
        worker_expr = chain if merge_kind == "grp" else expr
        self._worker_plan = compile_batch_plan(
            worker_expr, facts=facts, trace=False, cost_model=None,
            access_paths="off", sanitize=None, batch_size=batch_size)
        self._dedup_free = bool(
            merge_kind == "de" and facts is not None
            and facts.is_duplicate_free(chain))
        if merge_kind == "grp":
            with_key = PlanCompiler(facts=None, trace=False)
            self._key_fn = with_key.value(expr.by)
        else:
            self._key_fn = None

    # -- Pipeline surface ---------------------------------------------

    def explain(self) -> str:
        return "\n".join(self.notes)

    def execute(self, ctx: EvalContext, input_value: Any = _UNBOUND) -> Any:
        if input_value is not _UNBOUND:
            return self.serial.execute(ctx, input_value)
        tracer = getattr(ctx, "tracer", None)
        if self.trace_root is not None or (tracer is not None
                                           and tracer.enabled):
            return self.serial.execute(ctx, input_value)
        collection = ctx.database.get(self.leaf_name) \
            if hasattr(ctx.database, "get") else None
        if not isinstance(collection, MultiSet):
            return self.serial.execute(ctx, input_value)
        nparts = self.parallel
        parts = partition_tally(collection, nparts)
        worker = self._make_worker(ctx, parts)
        runner = _run_forked if hasattr(os, "fork") else _run_serial
        try:
            results = runner(worker, nparts)
        except _PartitionError:
            # Bit-identical error (and ordering) transparency: replay
            # serially on the parent context.  Workers are pure readers,
            # so no partial effects survive the discarded attempt.
            return self.serial.execute(ctx, input_value)
        stats = ctx.stats
        max_rows = 0
        for _, child_stats in results:
            rows = child_stats.get("partition_rows", 0)
            if rows > max_rows:
                max_rows = rows
            for name, amount in child_stats.items():
                if name == "partition_rows":
                    continue
                stats[name] = stats.get(name, 0) + amount
        stats["partitions"] = stats.get("partitions", 0) + nparts
        stats["partition_max_rows"] = max(
            stats.get("partition_max_rows", 0), max_rows)
        return self._merge([payload for payload, _ in results])

    # -- workers -------------------------------------------------------

    def _make_worker(self, ctx: EvalContext,
                     parts: List[Dict[Any, int]]) -> Callable[[int], Any]:
        plan = self._worker_plan
        name = self.leaf_name
        merge_kind = self.merge_kind
        key_fn = self._key_fn

        def worker(i: int) -> Tuple[Any, Dict[str, int]]:
            child = EvalContext(
                database=_Overlay(ctx.database, name,
                                  MultiSet._from_tally(parts[i])),
                store=ctx.store, functions=ctx.functions,
                methods=ctx.methods, indexes=None)
            result = plan.execute(child)
            if merge_kind == "grp":
                payload: Any = _bucketize(result, key_fn, child)
            elif isinstance(result, MultiSet):
                payload = list(result.items())
            else:
                payload = result
            child.stats["partition_rows"] = (
                result.distinct_count()
                if isinstance(result, MultiSet) else 0)
            return payload, child.stats

        return worker

    # -- merges --------------------------------------------------------

    def _merge(self, payloads: List[Any]) -> Any:
        if self.merge_kind == "grp":
            return self._merge_grp(payloads)
        for payload in payloads:
            if not isinstance(payload, list):
                # A Null result (dne/unk input) is partition-invariant:
                # every worker saw the same non-multiset leaf… which
                # cannot happen here (we partitioned a MultiSet), but a
                # chain stage may still yield Null for the whole stream.
                return payload
        if self.merge_kind == "de":
            if self._dedup_free:
                tally: Dict[Any, int] = {}
                for payload in payloads:
                    for element, count in payload:
                        tally[element] = tally.get(element, 0) + count
                return MultiSet._from_tally(tally)
            seen: Dict[Any, int] = {}
            for payload in payloads:
                for element, _ in payload:
                    if element not in seen:
                        seen[element] = 1
            return MultiSet._from_tally(seen)
        tally = {}
        for payload in payloads:
            for element, count in payload:
                tally[element] = tally.get(element, 0) + count
        return MultiSet._from_tally(tally)

    def _merge_grp(self, payloads: List[Any]) -> MultiSet:
        groups: Dict[Any, Dict[Any, int]] = {}
        for payload in payloads:
            for key, items in payload:
                bucket = groups.get(key)
                if bucket is None:
                    bucket = groups[key] = {}
                for element, count in items:
                    bucket[element] = bucket.get(element, 0) + count
        tally = {}
        for bucket in groups.values():
            group = MultiSet._from_tally(bucket)
            tally[group] = tally.get(group, 0) + 1
        return MultiSet._from_tally(tally)


def _bucketize(result: Any, key_fn: Callable,
               ctx: EvalContext) -> List[Tuple[Any, List[Tuple[Any, int]]]]:
    """Group a worker's chain output by GRP key, keeping the keys so
    the parent can merge buckets across partitions.  Mirrors the batch
    GRP operator: dne keys drop the element, unk is an ordinary key."""
    buckets: Dict[Any, Dict[Any, int]] = {}
    scanned = 0
    for element, count in result.items():
        scanned += count
        key = key_fn(element, ctx)
        if key is DNE:
            continue
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = {}
        bucket[element] = bucket.get(element, 0) + count
    if scanned:
        ctx.tick("elements_scanned", scanned)
        ctx.tick("grp_elements", scanned)
    return [(key, list(items.items())) for key, items in buckets.items()]


def partition_plan(expr: Expr, serial: Pipeline, facts: Any = None,
                   parallel: int = 2,
                   batch_size: int = DEFAULT_BATCH_SIZE) -> Any:
    """Wrap *serial* (a compiled batch pipeline for *expr*) in R(n)
    partition-parallel execution when the plan shape allows it;
    otherwise return *serial* unchanged.
    """
    if parallel < 2:
        return serial
    split = _split(expr)
    if split is None or not _parallel_safe(expr):
        return serial
    merge_kind, chain, leaf_name = split
    return PartitionPlan(expr, serial, merge_kind, chain, leaf_name,
                         parallel, batch_size, facts=facts)
