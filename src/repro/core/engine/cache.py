"""The per-query OID deref cache.

Example 2 of the paper is entirely about repeated DEREFs of the same
attribute ("the dept attribute needs to be DEREF'd only once"), and its
rewrite rules exist to hoist such derefs out of loops.  The compiled
engine complements those *logical* rewrites with a *physical* fix: a
small LRU map from OID to stored value, consulted by every compiled
DEREF (and by compiled method dispatch when it unwraps a Ref receiver).

The cache lives on the :class:`~repro.core.expr.EvalContext` and its
contract is per-query: ``EvalContext.begin_query()`` clears it, so
updates applied between statements can never serve a stale object.
Within one query the store is immutable except for REF-minted *new*
objects, which cannot collide with cached OIDs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

#: Default number of cached objects; generous for the workloads here
#: while still bounding memory on reference-heavy scans.
DEFAULT_CAPACITY = 4096

_MISSING = object()


class DerefCache:
    """A bounded LRU map from OID to stored value.

    Dangling references cache their ``dne`` result too — a reference
    that dangles at one point of a query dangles for all of it.

    ``hits`` / ``misses`` are lifetime counters bumped by the compiled
    DEREF operator; :meth:`repro.core.engine.Pipeline.execute` flushes
    their per-run deltas into the context's stats as
    ``deref_cache_hit`` / ``deref_cache_miss`` (and ``deref_count``),
    so the hot path pays one integer add instead of dict updates.
    """

    __slots__ = ("capacity", "hits", "misses", "version", "_entries")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("deref cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: The store ``version`` the cached entries were read under.
        #: :meth:`validate` drops everything when the store has moved
        #: on, so an update/delete between pipeline runs (with no
        #: ``begin_query`` in between) can never serve a stale object.
        self.version: Any = None
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, oid: Any, default: Any = None) -> Any:
        """The cached value for *oid*, refreshing its recency."""
        entries = self._entries
        found = entries.get(oid, _MISSING)
        if found is _MISSING:
            return default
        entries.move_to_end(oid)
        return found

    def put(self, oid: Any, value: Any) -> None:
        entries = self._entries
        if oid in entries:
            entries.move_to_end(oid)
        entries[oid] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def validate(self, store_version: Any) -> None:
        """Key the cache by the store's mutation counter: entries read
        under a different store version are unusable, so drop them (the
        hit/miss counters survive — they are lifetime totals)."""
        if self.version != store_version:
            self._entries.clear()
            self.version = store_version

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: Any) -> bool:
        return oid in self._entries

    def __repr__(self) -> str:
        return "DerefCache(%d/%d)" % (len(self._entries), self.capacity)
