"""Columnar batch execution: the per-element protocol, vectorized.

The streaming compiler (:mod:`.compiler`) moves one ``(element, count)``
chunk per generator resumption, so a fused chain still pays a Python
frame switch per occurrence.  This module keeps the compiler's physical
algebra — fusion, hash DE/GRP/join, deref caching, probe lowering — but
exchanges fixed-size :class:`Batch` objects between operators instead:
parallel arrays of elements and occurrence counts that fused chains
process in tight ``for`` loops with no per-element dispatch at all.

Beyond re-batching the scalar engine, two batch-only optimizations pay
for the protocol change:

* **Suffix memoization.**  A fused chain whose mid-stream stage derefs a
  *foreign key* (an INPUT-rooted access path with at least one step
  before the DEREF, e.g. ``DEREF(INPUT.dept)``) funnels many occurrences
  through few OIDs.  When every later stage is a pure function of the
  value (access paths, σ over paths and literals), the whole suffix of
  the chain is compiled into one function and memoized per OID for the
  duration of the execution — the classic functional join collapses
  from O(elements) to O(distinct targets) body work.
* **Grouped method dispatch.**  A ``SET_APPLY[m(INPUT)]`` stage groups
  each batch by exact receiver type, resolves and compiles the method
  body once per group, and runs receiver-independent or access-path
  bodies without a per-element closure call.  Within-batch order is
  preserved, so results are position-stable.

Null discipline, Kleene predicate logic, duplicate cardinalities and
typed filtering are occurrence-for-occurrence identical to both other
engines (the differential suite in ``tests/engine`` asserts batched
results bit-identical to the interpreter).  Work counters keep their
names; totals for stages *behind* a memoized suffix tick only on memo
misses (the skipped work genuinely did not run — see DESIGN.md §12).
Memo hits are accounted as ``deref_cache_hit``.
"""

from __future__ import annotations

from collections import Counter
from itertools import chain
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..expr import (AlgebraError, Const, EvalContext, Expr, Input, Named,
                    substitute_input)
from ..methods import IndexedTypeScan, MethodCall, MethodError
from ..operators.multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply,
                                  SetCollapse, SetCreate, exact_type_of)
from ..operators.refs import Deref
from ..operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..predicates import (And, Atom, Comp, Not, Predicate, TruePred, F, T, U)
from ..values import DNE, UNK, MultiSet, Null, Ref, Tup
from .compiler import (HashJoinMatch, Pipeline, PlanCompiler, _MISSING,
                       _ProbePlan, _flatten_pair, _fresh_cache, _match_probe,
                       cached_deref, match_hash_join)

#: Default number of occurrence slots per batch.
DEFAULT_BATCH_SIZE = 1024

#: Sentinel marking an occurrence dropped by a memoized suffix or a
#: grouped method runner (``dne`` never travels in a batch).
_DROP = object()


class Batch:
    """A column of occurrences in transit.

    ``elements`` and ``counts`` are parallel lists; ``counts is None``
    means every slot has cardinality one (the common case for extents of
    distinct objects — operators skip the counts column entirely then).
    ``dne`` never appears in a batch (dropped at construction, like
    multisets); ``unk`` travels in-band as an ordinary value.
    """

    __slots__ = ("elements", "counts")

    def __init__(self, elements: List[Any],
                 counts: Optional[List[int]] = None) -> None:
        self.elements = elements
        self.counts = counts

    def __len__(self) -> int:
        return len(self.elements)

    def cardinality(self) -> int:
        """Total occurrences in the batch."""
        if self.counts is None:
            return len(self.elements)
        return sum(self.counts)

    def __repr__(self) -> str:
        return "<Batch %d slot(s)%s>" % (
            len(self.elements), "" if self.counts is None else ", counted")


#: A compiled batch form: (input_value, ctx) -> Null | iter(Batch).
BatchFn = Callable[[Any, EvalContext], Any]


# ---------------------------------------------------------------------------
# Batch <-> chunk adapters
# ---------------------------------------------------------------------------

def _chunks_to_batches(chunks: Any, size: int) -> Iterator[Batch]:
    """Group an ``(element, count)`` chunk stream into batches."""
    elements: List[Any] = []
    counts: List[int] = []
    mixed = False
    for element, count in chunks:
        elements.append(element)
        counts.append(count)
        if count != 1:
            mixed = True
        if len(elements) >= size:
            yield Batch(elements, counts if mixed else None)
            elements, counts, mixed = [], [], False
    if elements:
        yield Batch(elements, counts if mixed else None)


def _tally_batches(tally: Any, size: int) -> Iterator[Batch]:
    """Slice a tally mapping (element -> count) into batches.

    Snapshots the mapping into parallel lists first (two C-level
    copies), so batches are pure list slices with no per-element Python
    work — this is the extent-scan fast path under every leaf.
    """
    keys = list(tally)
    vals = list(tally.values())
    n = len(keys)

    def gen() -> Iterator[Batch]:
        for i in range(0, n, size):
            cs = vals[i:i + size]
            if cs.count(1) == len(cs):
                yield Batch(keys[i:i + size], None)
            else:
                yield Batch(keys[i:i + size], cs)
    return gen()


def _batches_to_chunks(batches: Any) -> Iterator[Tuple[Any, int]]:
    for batch in batches:
        counts = batch.counts
        if counts is None:
            for element in batch.elements:
                yield element, 1
        else:
            for i, element in enumerate(batch.elements):
                yield element, counts[i]


def _materialize_batch_fn(batch_fn: BatchFn) -> Callable[[Any, EvalContext],
                                                         Any]:
    """Value form of a batch producer: tally batches into a MultiSet.
    All-ones batches take the C-speed ``Counter.update`` path."""
    def fn(v: Any, ctx: EvalContext) -> Any:
        batches = batch_fn(v, ctx)
        if isinstance(batches, Null):
            return batches
        tally: Counter = Counter()
        get = tally.get
        update = tally.update
        for batch in batches:
            counts = batch.counts
            if counts is None:
                update(batch.elements)
            else:
                for i, element in enumerate(batch.elements):
                    tally[element] = get(element, 0) + counts[i]
        return MultiSet._from_tally(dict(tally))
    return fn


# ---------------------------------------------------------------------------
# Purity / shape analysis for memoization and grouped dispatch
# ---------------------------------------------------------------------------

def _path_ops(expr: Expr) -> Optional[List[Tuple[str, Any]]]:
    """Decompose an INPUT-rooted access path into ops, innermost first:
    ``("extract", field)`` / ``("pi", names)`` / ``("deref", None)``.
    Returns None for any other shape."""
    ops: List[Tuple[str, Any]] = []
    node = expr
    while True:
        if isinstance(node, Input):
            ops.reverse()
            return ops
        if isinstance(node, TupExtract):
            ops.append(("extract", node.field))
            node = node.source
        elif isinstance(node, Pi):
            ops.append(("pi", node.names))
            node = node.source
        elif isinstance(node, Deref):
            ops.append(("deref", None))
            node = node.source
        else:
            return None


def _pure_expr(expr: Expr) -> bool:
    node = expr
    while True:
        if isinstance(node, (Input, Const)):
            return True
        if isinstance(node, (TupExtract, Pi, Deref)):
            node = node.source
            continue
        return False


def _pure_pred(pred: Predicate) -> bool:
    if isinstance(pred, Atom):
        return _pure_expr(pred.left) and _pure_expr(pred.right)
    if isinstance(pred, And):
        return _pure_pred(pred.left) and _pure_pred(pred.right)
    if isinstance(pred, Not):
        return _pure_pred(pred.inner)
    return isinstance(pred, TruePred)


_PURE_TYPES = (Input, Const, TupExtract, Pi, Deref, TupCat, TupCreate)


def _pure_tree(expr: Expr) -> bool:
    """True when *expr* is built purely from value accessors — a
    deterministic function of (input, store state) with no side
    effects, safe to evaluate once per group or memoize per OID."""
    if not isinstance(expr, _PURE_TYPES):
        return False
    for field in expr._fields:
        value = getattr(expr, field)
        if isinstance(value, Expr):
            if not _pure_tree(value):
                return False
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Expr) and not _pure_tree(item):
                    return False
    return True


def _memo_pure_stage(node: SetApply) -> bool:
    """Can this stage run inside a memoized suffix?  It must be a pure
    function of the incoming value: an access path, or a σ whose
    predicate touches only paths and literals.  No type filter (a
    filter drops ``unk``, which bypasses the suffix)."""
    if node.type_filter is not None:
        return False
    body = node.body
    if _path_ops(body) is not None:
        return True
    return (isinstance(body, Comp) and isinstance(body.source, Input)
            and _pure_pred(body.pred))


def _find_memo_split(nodes: List[SetApply]) -> Optional[Tuple[int, list,
                                                              int]]:
    """Find the earliest stage whose body derefs a *foreign key* (an
    access path with >= 1 step before the DEREF) such that it and every
    later stage is memo-pure.  Returns (stage index, path ops, index of
    the deref op) or None."""
    for j, node in enumerate(nodes):
        # A type filter on stage j itself is fine — it runs in the main
        # loop before the memoized suffix is entered (and drops unk, so
        # the unk bypass never fires either way).
        ops = _path_ops(node.body)
        if ops is None:
            continue
        k = next((i for i, op in enumerate(ops) if op[0] == "deref"), None)
        if k is None or k == 0:
            continue
        if all(_memo_pure_stage(n) for n in nodes[j + 1:]):
            return j, ops, k
    return None


# ---------------------------------------------------------------------------
# Shared code emitters
# ---------------------------------------------------------------------------

_DEREF_PROLOGUE = [
    "store = ctx.store",
    "cache = ctx.deref_cache",
    "if cache is None:",
    "    cache = _fresh_cache(ctx)",
    "entries = cache._entries",
    "capacity = cache.capacity",
    "_rd = getattr(store, 'reader', None) if store is not None else None",
    "store_get = _rd() if _rd is not None else "
    "(store.get if store is not None else None)",
]

_EXACT_PROLOGUE = [
    "store = ctx.store",
    "_etrd = getattr(store, 'exact_reader', None) "
    "if store is not None else None",
    "et_get = _etrd() if _etrd is not None else None",
]

#: Inlined exact_type_of for typed SET_APPLY filters: one dict probe
#: per Ref via the store's exact-type reader, falling back to the
#: function for snapshot stores and exotic values.  ``unk`` has no
#: exact type, so a typed filter always drops it.
_TYPE_FILTER_LINES = [
    "if value is UNK: continue",
    "_c = type(value)",
    "if _c is Ref:",
    "    if et_get is None:",
    "        _x = exact_type_of(value, ctx)",
    "    else:",
    "        _x = et_get(value.oid)",
    "        if _x is None: _x = value.type_name",
    "elif _c is Tup:",
    "    _x = value.type_name",
    "else:",
    "    _x = exact_type_of(value, ctx)",
]


class _Emitter:
    """Emit the per-occurrence code blocks shared by the batch codegen
    and the grouped method-dispatch runners.  Blocks transform a local
    ``value`` and leave via *drop* (``continue`` in loops, ``return
    _DROP`` in memoized suffix functions) when the occurrence is
    discarded; every step is guarded against ``unk`` so nulls propagate
    exactly like the interpreter."""

    def __init__(self) -> None:
        self.namespace: Dict[str, Any] = {
            "DNE": DNE, "UNK": UNK, "F": F, "T": T, "U": U,
            "exact_type_of": exact_type_of, "AlgebraError": AlgebraError,
            "Tup": Tup, "Ref": Ref, "_fresh_cache": _fresh_cache,
            "_MISSING": _MISSING, "Batch": Batch, "_DROP": _DROP,
        }
        self.uses_deref = False

    def path_block(self, op: Tuple[str, Any], sid: str, seq: int,
                   drop: str, scan: bool = False) -> List[str]:
        kind, arg = op
        if kind == "extract":
            key = "%s_f%d" % (sid, seq)
            msg = "%s_m%d" % (sid, seq)
            self.namespace[key] = arg
            self.namespace[msg] = ("TUP_EXTRACT(%s) needs a tuple input, "
                                   "got %%r" % arg)
            return [
                "if value is not UNK:",
                "    if not isinstance(value, Tup):",
                "        raise AlgebraError(%s %% (value,))" % msg,
                "    try:",
                "        value = value._map[%s]" % key,
                "    except KeyError:",
                "        value = value[%s]" % key,
                "    if value is DNE: %s" % drop,
            ]
        if kind == "pi":
            key = "%s_n%d" % (sid, seq)
            self.namespace[key] = arg
            return [
                "if value is not UNK:",
                "    if not isinstance(value, Tup):",
                "        raise AlgebraError('π needs a tuple input, "
                "got %r' % (value,))",
                "    value = value.project(%s)" % key,
            ]
        self.uses_deref = True
        if scan:
            # Scan-resistant: a one-shot extent deref would evict every
            # useful entry and never hit — skip the LRU entirely (a
            # whole-extent scan touches each oid once).
            return [
                "if value is not UNK:",
                "    if not isinstance(value, Ref):",
                "        raise AlgebraError('DEREF needs a reference, "
                "got %r' % (value,))",
                "    if store is None:",
                "        raise AlgebraError('DEREF needs an object store "
                "in the context')",
                "    cache.misses += 1",
                "    value = store_get(value.oid, DNE)",
                "    if value is DNE: %s" % drop,
            ]
        return [
            "if value is not UNK:",
            "    if not isinstance(value, Ref):",
            "        raise AlgebraError('DEREF needs a reference, "
            "got %r' % (value,))",
            "    if store is None:",
            "        raise AlgebraError('DEREF needs an object store "
            "in the context')",
            "    oid = value.oid",
            "    value = entries.get(oid, _MISSING)",
            "    if value is _MISSING:",
            "        cache.misses += 1",
            "        value = store_get(oid, DNE)",
            "        entries[oid] = value",
            "        if len(entries) > capacity:",
            "            entries.popitem(last=False)",
            "    else:",
            "        cache.hits += 1",
            "        entries.move_to_end(oid)",
            "    if value is DNE: %s" % drop,
        ]

    def path_blocks(self, ops: List[Tuple[str, Any]], sid: str,
                    drop: str, start: int = 0,
                    scan_first: bool = False) -> List[str]:
        lines: List[str] = []
        for seq, op in enumerate(ops):
            lines += self.path_block(op, sid, start + seq, drop,
                                     scan=scan_first and seq == 0)
        return lines

    def filter_block(self, pred: Predicate, i: int,
                     drop: str) -> Optional[List[str]]:
        """Inline ``Atom(TupExtract(f, INPUT), = | !=, Const)`` —
        the batch twin of the scalar codegen's σ-atom inliner."""
        if not isinstance(pred, Atom) or pred.op not in ("=", "!="):
            return None
        left, right = pred.left, pred.right
        if not (isinstance(left, TupExtract)
                and isinstance(left.source, Input)
                and isinstance(right, Const)):
            return None
        if isinstance(right.value, Null):
            return None
        key, cst, msg = "p%d_f" % i, "p%d_c" % i, "p%d_m" % i
        self.namespace[key] = left.field
        self.namespace[cst] = right.value
        self.namespace[msg] = ("TUP_EXTRACT(%s) needs a tuple input, "
                               "got %%r" % left.field)
        if pred.op == "=":
            verdict = "    elif lhs != %s: %s" % (cst, drop)
        else:
            verdict = "    elif lhs == %s: %s" % (cst, drop)
        return [
            "if value is not UNK:",
            "    ce%d += 1" % i,
            "    if not isinstance(value, Tup):",
            "        raise AlgebraError(%s %% (value,))" % msg,
            "    try:",
            "        lhs = value._map[%s]" % key,
            "    except KeyError:",
            "        lhs = value[%s]" % key,
            "    ae%d += 1" % i,
            "    if lhs is DNE: %s" % drop,
            "    if lhs is UNK: value = UNK",
            verdict,
        ]


# ---------------------------------------------------------------------------
# Fused batch code generation
# ---------------------------------------------------------------------------

def _bump(counter: str, acc: str) -> str:
    return "stats[%r] = sget(%r, 0) + %s" % (counter, counter, acc)


class _BatchCodegen:
    """Generate the driver for a fused SET_APPLY chain over batches.

    One generated generator function consumes a batch stream and yields
    transformed batches; within a batch the stages run as straight-line
    code inside a single tight loop (two variants: one for all-ones
    batches that never touches a counts column, one for counted
    batches).  Per-stage work counters are local integers flushed once
    in ``finally`` into the stats dict captured at generator start —
    the same late-close discipline as the scalar codegen.

    When :func:`_find_memo_split` locates a foreign-key deref whose
    remaining chain is pure, the suffix from that deref onward becomes
    a second generated function, called once per distinct OID and
    memoized in a per-execution dict.
    """

    def __init__(self, compiler: "BatchPlanCompiler") -> None:
        self.compiler = compiler
        self.emitter = _Emitter()
        self.namespace = self.emitter.namespace
        self.inlined = 0
        self.memoized = False
        self.uses_exact = False

    # -- per-stage emission -------------------------------------------

    def _scan_lines(self, i: int, node: SetApply, cnt: str,
                    accs: List[str], flush: List[str],
                    register: bool) -> List[str]:
        """The scan-tick / typed-filter prefix of a stage."""
        lines: List[str] = []
        if node.type_filter is not None:
            self.uses_exact = True
            if register:
                self.namespace["tf%d" % i] = node.type_filter
                accs += ["sc%d" % i, "ap%d" % i]
                flush.append("if sc%d: %s"
                             % (i, _bump("elements_scanned", "sc%d" % i)))
                flush.append("if ap%d: %s"
                             % (i, _bump("set_apply_elements", "ap%d" % i)))
            lines.append("sc%d += %s" % (i, cnt))
            lines += _TYPE_FILTER_LINES
            lines.append("if _x not in tf%d: continue" % i)
            lines.append("ap%d += %s" % (i, cnt))
        else:
            if register:
                accs.append("sc%d" % i)
                flush.append("if sc%d:" % i)
                flush.append("    " + _bump("elements_scanned", "sc%d" % i))
                flush.append("    " + _bump("set_apply_elements",
                                            "sc%d" % i))
            lines.append("sc%d += %s" % (i, cnt))
        return lines

    def _stage_lines(self, i: int, node: SetApply, cnt: str,
                     accs: List[str], flush: List[str],
                     register: bool, scan_deref: bool = False) -> List[str]:
        """Lines for stage *i* of the main loop; *cnt* is the
        occurrence-count expression ("1" or "count").  *register*
        guards acc/flush bookkeeping so the second loop variant doesn't
        double it.  *scan_deref* marks an extent-rooted first stage
        whose leading DEREF should bypass the LRU (scan resistance)."""
        lines = self._scan_lines(i, node, cnt, accs, flush, register)
        expr = node.body
        if isinstance(expr, Comp) and isinstance(expr.source, Input):
            if register:
                accs.append("ce%d" % i)
                flush.append("if ce%d: %s"
                             % (i, _bump("comp_evals", "ce%d" % i)))
            inline = self.emitter.filter_block(expr.pred, i, "continue")
            if inline is not None:
                if register:
                    self.inlined += 1
                    accs.append("ae%d" % i)
                    flush.append("if ae%d: %s"
                                 % (i, _bump("atom_evals", "ae%d" % i)))
                lines += inline
            else:
                if register:
                    self.namespace["f%d" % i] = \
                        self.compiler.pred(expr.pred)
                lines += [
                    "if value is not UNK:",
                    "    ce%d += 1" % i,
                    "    verdict = f%d(value, ctx)" % i,
                    "    if verdict == F: continue",
                    "    if verdict == U: value = UNK",
                ]
        else:
            ops = _path_ops(expr)
            if ops is not None:
                if register:
                    self.inlined += 1
                lines += self.emitter.path_blocks(
                    ops, "s%d" % i, "continue",
                    scan_first=scan_deref and bool(ops)
                    and ops[0][0] == "deref")
            else:
                if register:
                    self.namespace["f%d" % i] = self.compiler.value(expr)
                lines.append("value = f%d(value, ctx)" % i)
                lines.append("if value is DNE: continue")
        return lines

    def _suffix_stage_lines(self, i: int, node: SetApply, accs: List[str],
                            flush: List[str],
                            skip_ops: int = 0) -> List[str]:
        """Lines for a stage inside the memoized suffix function: drops
        become ``return _DROP`` and counters tick per invocation (the
        suffix only runs on memo misses)."""
        drop = "return _DROP"
        lines: List[str] = []
        accs.append("sc%d" % i)
        flush.append("if sc%d:" % i)
        flush.append("    " + _bump("elements_scanned", "sc%d" % i))
        flush.append("    " + _bump("set_apply_elements", "sc%d" % i))
        lines.append("sc%d += 1" % i)
        expr = node.body
        if isinstance(expr, Comp) and isinstance(expr.source, Input):
            accs.append("ce%d" % i)
            flush.append("if ce%d: %s" % (i, _bump("comp_evals",
                                                   "ce%d" % i)))
            inline = self.emitter.filter_block(expr.pred, i, drop)
            if inline is not None:
                accs.append("ae%d" % i)
                flush.append("if ae%d: %s" % (i, _bump("atom_evals",
                                                       "ae%d" % i)))
                lines += inline
            else:
                self.namespace["f%d" % i] = self.compiler.pred(expr.pred)
                lines += [
                    "if value is not UNK:",
                    "    ce%d += 1" % i,
                    "    verdict = f%d(value, ctx)" % i,
                    "    if verdict == F: %s" % drop,
                    "    if verdict == U: value = UNK",
                ]
        else:
            ops = _path_ops(expr)
            assert ops is not None  # guaranteed by _memo_pure_stage
            lines += self.emitter.path_blocks(ops[skip_ops:], "s%d" % i,
                                              drop, start=skip_ops)
        return lines

    # -- assembly ------------------------------------------------------

    def build(self, nodes: List[SetApply],
              extent_root: bool = False) -> Callable:
        split = _find_memo_split(nodes)
        accs: List[str] = []
        flush: List[str] = []
        suffix_src: List[str] = []
        memo_j = -1
        if split is not None:
            memo_j, ops, deref_at = split
            self.memoized = True
            suffix_src = self._build_suffix(nodes, memo_j, ops, deref_at)
        # Stage bodies for both loop variants (all-ones vs counted).
        ones_body: List[str] = []
        counted_body: List[str] = []
        for variant, cnt, body in (("ones", "1", ones_body),
                                   ("counted", "count", counted_body)):
            register = variant == "ones"
            for i, node in enumerate(nodes):
                if i == memo_j:
                    body += self._memo_call_lines(i, nodes[i], ops,
                                                  deref_at, cnt, accs,
                                                  flush, register)
                    break
                body += self._stage_lines(i, node, cnt, accs, flush,
                                          register,
                                          scan_deref=extent_root
                                          and i == 0)
        if self.memoized:
            accs.append("mh")
            flush.append("if mh:")
            flush.append("    " + _bump("deref_count", "mh"))
            flush.append("    " + _bump("deref_cache_hit", "mh"))
        prologue = ["    %s = 0" % " = ".join(accs),
                    "    stats = ctx.stats",
                    "    sget = stats.get"]
        if self.emitter.uses_deref:
            prologue += ["    " + line for line in _DEREF_PROLOGUE]
        if self.uses_exact:
            prologue += ["    " + line for line in _EXACT_PROLOGUE]
        if self.memoized:
            prologue += ["    memo = {}", "    memo_get = memo.get"]
        ind8 = "                "
        lines = ["def _bfused(batches, ctx):"]
        lines += prologue
        lines += [
            "    try:",
            "        for _batch in batches:",
            "            elements = _batch.elements",
            "            counts = _batch.counts",
            "            out = []",
            "            oappend = out.append",
            "            if counts is None:",
            "                for value in elements:",
        ]
        lines += [ind8 + "    " + line for line in ones_body]
        lines += [
            ind8 + "    oappend(value)",
            "                if out:",
            "                    yield Batch(out, None)",
            "            else:",
            "                ocounts = []",
            "                cappend = ocounts.append",
            "                for _i, value in enumerate(elements):",
            ind8 + "    count = counts[_i]",
        ]
        lines += [ind8 + "    " + line for line in counted_body]
        lines += [
            ind8 + "    oappend(value)",
            ind8 + "    cappend(count)",
            "                if out:",
            "                    yield Batch(out, ocounts)",
            "    finally:",
        ]
        lines += ["        " + line for line in flush]
        source = "\n".join(suffix_src + lines)
        exec(source, self.namespace)
        return self.namespace["_bfused"]

    def _memo_call_lines(self, i: int, node: SetApply, ops: list,
                         deref_at: int, cnt: str, accs: List[str],
                         flush: List[str],
                         register: bool) -> List[str]:
        """The main-loop side of a memoized suffix: run the pre-deref
        path steps, then look the OID up in the per-execution memo
        before paying for the suffix function."""
        lines = self._scan_lines(i, node, cnt, accs, flush, register)
        lines += self.emitter.path_blocks(ops[:deref_at], "s%d" % i,
                                          "continue")
        lines += [
            "if value is not UNK:",
            "    if type(value) is Ref:",
            "        _k = value.oid",
            "        _w = memo_get(_k, _MISSING)",
            "        if _w is _MISSING:",
            "            _w = _suffix(value, ctx)",
            "            memo[_k] = _w",
            "        else:",
            "            mh += 1",
            "    else:",
            "        _w = _suffix(value, ctx)",
            "    if _w is _DROP: continue",
            "    value = _w",
        ]
        return lines

    def _build_suffix(self, nodes: List[SetApply], j: int, ops: list,
                      deref_at: int) -> List[str]:
        accs: List[str] = []
        flush: List[str] = []
        body: List[str] = []
        body += self.emitter.path_blocks(ops[deref_at:], "s%d" % j,
                                         "return _DROP", start=deref_at)
        for i in range(j + 1, len(nodes)):
            body += self._suffix_stage_lines(i, nodes[i], accs, flush)
        lines = ["def _suffix(value, ctx):",
                 "    stats = ctx.stats",
                 "    sget = stats.get"]
        if accs:
            lines.append("    %s = 0" % " = ".join(accs))
        lines += ["    " + line for line in _DEREF_PROLOGUE]
        lines.append("    try:")
        lines += ["        " + line for line in body]
        lines.append("        return value")
        lines.append("    finally:")
        if flush:
            lines += ["        " + line for line in flush]
        else:
            lines.append("        pass")
        return lines


# ---------------------------------------------------------------------------
# Grouped method dispatch
# ---------------------------------------------------------------------------

class _MethodStage:
    """A ``SET_APPLY[m(INPUT)]`` stage executed batch-at-a-time.

    Each batch is grouped by exact receiver type; the method body is
    resolved and compiled once per type (memoized across executions,
    like the scalar engine's per-exact-type body cache), and each group
    runs through a specialized runner:

    * receiver-independent pure bodies evaluate once per group;
    * access-path bodies run in a generated tight loop;
    * anything else falls back to one compiled-closure call per slot.

    Results are written back by position, so batch order is preserved.
    Dispatch errors (no exact type) surface at the offending slot in
    stream order, exactly like the scalar engine.
    """

    def __init__(self, compiler: "BatchPlanCompiler",
                 node: SetApply) -> None:
        self.compiler = compiler
        call = node.body
        assert isinstance(call, MethodCall)
        self.name = call.name
        self.args = list(call.args)
        self.type_filter = node.type_filter
        self._runners: Dict[str, Callable] = {}

    def apply(self, batches: Any, ctx: EvalContext) -> Iterator[Batch]:
        name = self.name
        tf = self.type_filter
        runners = self._runners
        stats = ctx.stats
        methods = ctx.methods
        store = ctx.store
        if store is None or methods is None:
            # Degenerate contexts (no store / no registry) keep the
            # straightforward per-slot path; real dispatch never lands
            # here.
            for batch in self._apply_general(batches, ctx):
                yield batch
            return
        # Hoisted fast paths: the store's exact-type and object tables,
        # and the deref LRU's backing dict — one dict probe per
        # receiver instead of three Python frames.
        rd = getattr(store, "exact_reader", None)
        exact_get = rd() if rd is not None else store.exact_type
        rd = getattr(store, "reader", None)
        store_get = rd() if rd is not None else store.get
        cache = ctx.deref_cache
        if cache is None:
            cache = _fresh_cache(ctx)
        entries = cache._entries
        capacity = cache.capacity
        entries_get = entries.get
        for batch in batches:
            elements = batch.elements
            counts = batch.counts
            n = len(elements)
            out: List[Any] = [_DROP] * n
            recv: Optional[List[Any]] = None
            group_order: List[Tuple[Callable, List[int]]] = []
            groups: Dict[str, List[int]] = {}
            groups_get = groups.get
            scanned = batch.cardinality()
            applied = 0
            dispatched = 0
            hits = 0
            misses = 0
            for i in range(n):
                value = elements[i]
                cls = type(value)
                if cls is Ref:
                    oid = value.oid
                    exact = exact_get(oid)
                    if exact is None:
                        exact = value.type_name
                    if tf is not None:
                        if exact not in tf:
                            continue
                        applied += 1 if counts is None else counts[i]
                    if exact is None:
                        raise MethodError(
                            "cannot dispatch %r: receiver %r has no "
                            "exact type" % (name, value))
                    dispatched += 1
                    target = entries_get(oid, _MISSING)
                    if target is _MISSING:
                        misses += 1
                        target = store_get(oid, DNE)
                        entries[oid] = target
                        if len(entries) > capacity:
                            entries.popitem(last=False)
                    else:
                        hits += 1
                        entries.move_to_end(oid)
                    if target is DNE:
                        continue
                    if recv is None:
                        recv = list(elements)
                    recv[i] = target
                elif cls is Tup:
                    exact = value.type_name
                    if tf is not None:
                        if exact not in tf:
                            continue
                        applied += 1 if counts is None else counts[i]
                    if exact is None:
                        raise MethodError(
                            "cannot dispatch %r: receiver %r has no "
                            "exact type" % (name, value))
                    dispatched += 1
                elif value is UNK:
                    # unk has no exact type: a typed filter drops it;
                    # otherwise dispatch passes the null through.
                    if tf is None:
                        out[i] = UNK
                    continue
                else:
                    exact = exact_type_of(value, ctx)
                    if tf is not None:
                        if exact not in tf:
                            continue
                        applied += 1 if counts is None else counts[i]
                    if exact is None:
                        raise MethodError(
                            "cannot dispatch %r: receiver %r has no "
                            "exact type" % (name, value))
                    dispatched += 1
                bucket = groups_get(exact)
                if bucket is None:
                    # Resolve and compile at first sight of the type so
                    # resolution errors surface in stream order.
                    runner = runners.get(exact)
                    if runner is None:
                        runner = runners[exact] = \
                            self._build_runner(exact, ctx)
                    bucket = groups[exact] = []
                    group_order.append((runner, bucket))
                bucket.append(i)
            if group_order:
                source = elements if recv is None else recv
                for runner, idxs in group_order:
                    runner(source, idxs, out, ctx)
            if scanned:
                stats["elements_scanned"] = (
                    stats.get("elements_scanned", 0) + scanned)
                stats["set_apply_elements"] = (
                    stats.get("set_apply_elements", 0)
                    + (applied if tf is not None else scanned))
            if dispatched:
                stats["method_dispatches"] = (
                    stats.get("method_dispatches", 0) + dispatched)
            if hits:
                cache.hits += hits
            if misses:
                cache.misses += misses
            if counts is None:
                oelems = [w for w in out if w is not _DROP]
                if oelems:
                    yield Batch(oelems, None)
                continue
            oelems = []
            ocounts: List[int] = []
            mixed = False
            for i in range(n):
                w = out[i]
                if w is _DROP:
                    continue
                oelems.append(w)
                c = counts[i]
                ocounts.append(c)
                if c != 1:
                    mixed = True
            if oelems:
                yield Batch(oelems, ocounts if mixed else None)

    def _apply_general(self, batches: Any,
                       ctx: EvalContext) -> Iterator[Batch]:
        name = self.name
        tf = self.type_filter
        for batch in batches:
            elements = batch.elements
            counts = batch.counts
            n = len(elements)
            out: List[Any] = [_DROP] * n
            recv: Optional[List[Any]] = None
            groups: Dict[str, List[int]] = {}
            scanned = 0
            applied = 0
            dispatched = 0
            for i in range(n):
                value = elements[i]
                c = 1 if counts is None else counts[i]
                scanned += c
                if value is UNK:
                    if tf is not None:
                        continue
                    out[i] = UNK
                    continue
                exact = exact_type_of(value, ctx)
                if tf is not None:
                    if exact not in tf:
                        continue
                    applied += c
                if exact is None:
                    raise MethodError(
                        "cannot dispatch %r: receiver %r has no exact type"
                        % (name, value))
                if ctx.methods is None:
                    raise MethodError("no method registry in the context")
                dispatched += 1
                if type(value) is Ref:
                    value = cached_deref(ctx, value.oid)
                    if value is DNE:
                        continue
                    if recv is None:
                        recv = list(elements)
                    recv[i] = value
                bucket = groups.get(exact)
                if bucket is None:
                    bucket = groups[exact] = []
                bucket.append(i)
            if groups:
                source = elements if recv is None else recv
                for exact, idxs in groups.items():
                    runner = self._runners.get(exact)
                    if runner is None:
                        runner = self._runners[exact] = \
                            self._build_runner(exact, ctx)
                    runner(source, idxs, out, ctx)
            stats = ctx.stats
            if scanned:
                stats["elements_scanned"] = (
                    stats.get("elements_scanned", 0) + scanned)
                stats["set_apply_elements"] = (
                    stats.get("set_apply_elements", 0)
                    + (applied if tf is not None else scanned))
            if dispatched:
                stats["method_dispatches"] = (
                    stats.get("method_dispatches", 0) + dispatched)
            oelems: List[Any] = []
            ocounts: List[int] = []
            mixed = False
            for i in range(n):
                w = out[i]
                if w is _DROP:
                    continue
                oelems.append(w)
                c = 1 if counts is None else counts[i]
                ocounts.append(c)
                if c != 1:
                    mixed = True
            if oelems:
                yield Batch(oelems, ocounts if mixed else None)

    def _build_runner(self, exact: str, ctx: EvalContext) -> Callable:
        compiler = self.compiler
        assert ctx.methods is not None
        method = ctx.methods.resolve(exact, self.name)
        body = method.instantiate(self.args)
        with compiler._no_trace():
            body_fn = compiler.value(body)
        if not body.uses_input() and _pure_tree(body):
            def const_runner(recv: List[Any], idxs: List[int],
                             out: List[Any], ctx: EvalContext) -> None:
                result = body_fn(recv[idxs[0]], ctx)
                if result is DNE:
                    return
                for i in idxs:
                    out[i] = result
            return const_runner
        ops = _path_ops(body)
        if ops is not None:
            return _make_path_runner(ops)

        def generic(recv: List[Any], idxs: List[int], out: List[Any],
                    ctx: EvalContext) -> None:
            for i in idxs:
                result = body_fn(recv[i], ctx)
                if result is not DNE:
                    out[i] = result
        return generic


def _make_path_runner(ops: List[Tuple[str, Any]]) -> Callable:
    """A generated tight loop applying an access-path method body to a
    group of receivers, writing results back by position.

    When the path reaches its first DEREF through at least one prior
    step, everything downstream depends only on the dereferenced oid —
    a foreign key shared across receivers (the paper's ``boss`` body:
    extract manager, deref, extract name).  That suffix is compiled
    into its own function and memoized per oid for the duration of the
    call, so repeated targets cost one dict probe instead of a cache
    lookup plus the remaining path steps.  Memo hits count as deref
    cache hits; the interpreter's per-receiver stats tick only on
    misses (the documented stats divergence under memoization)."""
    emitter = _Emitter()
    split = next((i for i, (kind, _) in enumerate(ops)
                  if kind == "deref"), -1)
    if split >= 1:
        pre = emitter.path_blocks(ops[:split], "mb", "continue")
        suffix = emitter.path_blocks(ops[split:], "ms", "return _DROP",
                                     start=split)
        slines = ["def _msfx(value, ctx):"]
        slines += ["    " + line for line in _DEREF_PROLOGUE]
        slines += ["    " + line for line in suffix]
        slines.append("    return value")
        exec("\n".join(slines), emitter.namespace)
        lines = [
            "def _mrun(recv, idxs, out, ctx):",
            "    memo = {}",
            "    memo_get = memo.get",
            "    mh = 0",
            "    try:",
            "        for _i in idxs:",
            "            value = recv[_i]",
        ]
        lines += ["            " + line for line in pre]
        lines += [
            "            if value is not UNK and type(value) is Ref:",
            "                _k = value.oid",
            "                _w = memo_get(_k, _MISSING)",
            "                if _w is _MISSING:",
            "                    _w = _msfx(value, ctx)",
            "                    memo[_k] = _w",
            "                else:",
            "                    mh += 1",
            "            else:",
            "                _w = _msfx(value, ctx)",
            "            if _w is _DROP: continue",
            "            out[_i] = _w",
            "    finally:",
            "        if mh:",
            "            cache = ctx.deref_cache",
            "            if cache is None:",
            "                cache = _fresh_cache(ctx)",
            "            cache.hits += mh",
        ]
        exec("\n".join(lines), emitter.namespace)
        return emitter.namespace["_mrun"]
    body = emitter.path_blocks(ops, "mb", "continue")
    lines = ["def _mrun(recv, idxs, out, ctx):"]
    if emitter.uses_deref:
        lines += ["    " + line for line in _DEREF_PROLOGUE]
    lines.append("    for _i in idxs:")
    lines.append("        value = recv[_i]")
    lines += ["        " + line for line in body]
    lines.append("        out[_i] = value")
    exec("\n".join(lines), emitter.namespace)
    return emitter.namespace["_mrun"]


def _make_union_scan(branches: List[Tuple[frozenset, List[Tuple[str,
                                                                Any]]]],
                     ) -> Callable:
    """One generated scan for a ⊎ of typed SET_APPLY branches over the
    same extent — Figure 5's observation that "the need to scan P three
    times … disappears", realized without an index: each element's
    exact type selects its branch body in an if/elif ladder, so the
    extent streams through once instead of once per branch.  Branch
    bodies whose path reaches a foreign-key DEREF get the same
    per-execution OID memo as fused chains.  ``elements_scanned``
    counts every branch's logical scan (× n_branches) so work
    accounting still reflects the algebraic plan."""
    emitter = _Emitter()
    nb = len(branches)
    pres: List[Tuple[str, List[str], int]] = []  # (kind, lines, branch)
    memo_branches: List[int] = []
    for b, (tf, ops) in enumerate(branches):
        emitter.namespace["tf%d" % b] = tf
        split = next((i for i, (kind, _) in enumerate(ops)
                      if kind == "deref"), -1)
        if split >= 1:
            memo_branches.append(b)
            lines = emitter.path_blocks(ops[:split], "u%dp" % b, "continue")
            lines += [
                "if value is not UNK and type(value) is Ref:",
                "    _k = value.oid",
                "    _w = memo%d_get(_k, _MISSING)" % b,
                "    if _w is _MISSING:",
                "        _w = _usfx%d(value, ctx)" % b,
                "        memo%d[_k] = _w" % b,
                "    else:",
                "        mh%d += 1" % b,
                "else:",
                "    _w = _usfx%d(value, ctx)" % b,
                "if _w is _DROP: continue",
                "value = _w",
            ]
            pres.append(("memo", lines, b))
        else:
            lines = emitter.path_blocks(ops, "u%dp" % b, "continue")
            pres.append(("inline", lines, b))
    main_uses_deref = emitter.uses_deref
    for b in memo_branches:
        _, ops = branches[b]
        split = next(i for i, (kind, _) in enumerate(ops)
                     if kind == "deref")
        suffix = emitter.path_blocks(ops[split:], "u%ds" % b,
                                     "return _DROP", start=split)
        slines = ["def _usfx%d(value, ctx):" % b]
        slines += ["    " + line for line in _DEREF_PROLOGUE]
        slines += ["    " + line for line in suffix]
        slines.append("    return value")
        exec("\n".join(slines), emitter.namespace)

    def element_lines(cnt: str, counted: bool) -> List[str]:
        lines = ["sc += %s" % cnt]
        lines += _TYPE_FILTER_LINES
        for pos, (kind, blines, b) in enumerate(pres):
            kw = "if" if pos == 0 else "elif"
            lines.append("%s _x in tf%d:" % (kw, b))
            lines.append("    ap += %s" % cnt)
            lines += ["    " + line for line in blines]
            lines.append("    _append(value)")
            if counted:
                lines.append("    _capp(count)")
                lines.append("    if count != 1: mixed = True")
        lines.append("else:")
        lines.append("    continue")
        return lines

    lines = ["def _bunion(batches, ctx):"]
    lines += ["    " + line for line in _EXACT_PROLOGUE]
    if main_uses_deref:
        lines += ["    " + line for line in _DEREF_PROLOGUE]
    lines += [
        "    stats = ctx.stats",
        "    sget = stats.get",
        "    sc = 0",
        "    ap = 0",
    ]
    for b in memo_branches:
        lines += [
            "    memo%d = {}" % b,
            "    memo%d_get = memo%d.get" % (b, b),
            "    mh%d = 0" % b,
        ]
    lines += [
        "    try:",
        "        for batch in batches:",
        "            elements = batch.elements",
        "            counts = batch.counts",
        "            out = []",
        "            _append = out.append",
        "            if counts is None:",
        "                for value in elements:",
    ]
    lines += ["                    " + line
              for line in element_lines("1", False)]
    lines += [
        "                if out:",
        "                    yield Batch(out, None)",
        "            else:",
        "                oc = []",
        "                _capp = oc.append",
        "                mixed = False",
        "                for _i, value in enumerate(elements):",
        "                    count = counts[_i]",
    ]
    lines += ["                    " + line
              for line in element_lines("count", True)]
    lines += [
        "                if out:",
        "                    yield Batch(out, oc if mixed else None)",
        "    finally:",
        "        if sc:",
        "            stats['elements_scanned'] = "
        "sget('elements_scanned', 0) + sc * %d" % nb,
        "            stats['set_apply_elements'] = "
        "sget('set_apply_elements', 0) + ap",
    ]
    if memo_branches:
        total = " + ".join("mh%d" % b for b in memo_branches)
        lines += [
            "        if %s:" % total,
            "            cache = ctx.deref_cache",
            "            if cache is None:",
            "                cache = _fresh_cache(ctx)",
            "            cache.hits += %s" % total,
        ]
    exec("\n".join(lines), emitter.namespace)
    return emitter.namespace["_bunion"]


# ---------------------------------------------------------------------------
# The batch compiler
# ---------------------------------------------------------------------------

#: Root operator classes that produce multisets and have batch forms.
_BATCH_ROOTS = (SetApply, DE, Grp, AddUnion, Diff, Cross, SetCollapse,
                SetCreate, IndexedTypeScan)


class BatchPlanCompiler(PlanCompiler):
    """The streaming compiler with a batch-at-a-time operator layer.

    ``batches(expr, …)`` mirrors ``stream(expr, …)``: operators with a
    ``_b_<Type>`` handler exchange :class:`Batch` objects; anything
    else falls back to the inherited chunk stream and is re-batched at
    the seam.  Scalar subforms (stage bodies, predicates, group keys,
    value operands) compile through the inherited machinery unchanged —
    they run per occurrence either way.
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE,
                 **kwargs: Any) -> None:
        super().__init__(**kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1, got %r"
                             % (batch_size,))
        self.batch_size = batch_size

    # -- dispatch ------------------------------------------------------

    def batch_value(self, expr: Expr) -> Callable[[Any, EvalContext], Any]:
        """The value form of *expr*, batch-executed when the root is a
        multiset operator (the only places a batch protocol pays)."""
        if isinstance(expr, _BATCH_ROOTS):
            return _materialize_batch_fn(
                self.batches(expr, "query root needs a multiset, got %r",
                             with_value=True))
        return self.value(expr)

    def batches(self, expr: Expr, message: str,
                with_value: bool = False) -> BatchFn:
        if self._statically_empty_sort(expr) == "set":
            self.note("EMPTY[static] %s" % type(expr).__name__)
            return lambda v, ctx: iter(())
        method = getattr(self, "_b_%s" % type(expr).__name__, None)
        if method is None:
            stream_fn = self.stream(expr, message, with_value)
            size = self.batch_size

            def adapted(v: Any, ctx: EvalContext) -> Any:
                chunks = stream_fn(v, ctx)
                if isinstance(chunks, Null):
                    return chunks
                return _chunks_to_batches(chunks, size)
            return adapted
        if self.trace and not self._suppress:
            span = self._open_span(expr)
            try:
                fn = method(expr, message, with_value)
            finally:
                self._span_stack.pop()
            fn = _traced_batches(fn, span)
        else:
            fn = method(expr, message, with_value)
        if self.sanitize is not None:
            checks = self.sanitize.runtime_checks(
                expr, dup_free=self._claimed_dupfree(expr))
            if checks is not None:
                fn = _sanitized_batches(fn, checks, self.batch_size)
        return fn

    # -- leaves --------------------------------------------------------

    def _b_Named(self, expr: Named, message: str,
                 with_value: bool) -> BatchFn:
        name = expr.name
        size = self.batch_size

        def fn(v: Any, ctx: EvalContext) -> Any:
            collection = ctx.lookup(name)
            if isinstance(collection, Null):
                return collection
            if not isinstance(collection, MultiSet):
                raise AlgebraError(message % (collection,) if with_value
                                   else message)
            return _tally_batches(collection._counts, size)
        return fn

    # -- SET_APPLY chains ----------------------------------------------

    def _compile_chain(self, nodes: List[SetApply],
                       extent_root: bool = False) -> Optional[Callable]:
        """Compose fused codegen segments and method stages into one
        ``(batches, ctx) -> batches`` driver.  *extent_root* marks a
        chain fed directly by a stored extent, licensing the
        scan-resistant DEREF in its first fused stage."""
        runs: List[Callable] = []
        fused: List[SetApply] = []
        details: List[str] = []

        def flush_fused() -> None:
            if not fused:
                return
            codegen = _BatchCodegen(self)
            with self._no_trace():
                gen = codegen.build(list(fused),
                                    extent_root=extent_root
                                    and not runs)
            details.append("%d fused (%d inlined%s)"
                           % (len(fused), codegen.inlined,
                              ", suffix memo" if codegen.memoized else ""))
            runs.append(gen)
            del fused[:]

        for node in nodes:
            body = node.body
            if (isinstance(body, MethodCall)
                    and isinstance(body.receiver, Input)):
                flush_fused()
                stage = _MethodStage(self, node)
                details.append("grouped dispatch %s" % body.name)
                runs.append(stage.apply)
            else:
                fused.append(node)
        flush_fused()
        if details:
            self.note("BATCH_APPLY[%s]" % "; ".join(details))
        if not runs:
            return None
        if len(runs) == 1:
            return runs[0]

        def chained(batches: Any, ctx: EvalContext) -> Any:
            for run in runs:
                batches = run(batches, ctx)
            return batches
        return chained

    def _b_SetApply(self, expr: SetApply, message: str,
                    with_value: bool) -> BatchFn:
        match = match_hash_join(expr)
        if match is not None:
            return self._b_hash_join(match)
        nodes: List[SetApply] = []
        node: Expr = expr
        while (isinstance(node, SetApply)
               and (node is expr or match_hash_join(node) is None)):
            nodes.append(node)
            node = node.source
        nodes.reverse()
        if self.access_paths != "off" and isinstance(node, Named) and nodes:
            probe = _match_probe(nodes[0])
            absorbed = 0
            if (probe is None and len(nodes) >= 2
                    and nodes[0].type_filter is None
                    and not isinstance(nodes[0].body, Comp)):
                inner = _match_probe(nodes[1])
                if inner is not None and inner.kind != "typed":
                    probe = _ProbePlan(
                        inner.kind,
                        key=substitute_input(inner.key, nodes[0].body),
                        eq_const=inner.eq_const, bounds=inner.bounds,
                        pred=inner.pred)
                    absorbed = 1
            if probe is not None and self._approve_probe(node.name, probe):
                return self._b_indexed_apply(node, probe, nodes, absorbed)
        src = self.batches(node, "SET_APPLY needs a multiset input, got %r",
                           with_value=True)
        run = self._compile_chain(nodes,
                                  extent_root=isinstance(node, Named))

        def fn(v: Any, ctx: EvalContext) -> Any:
            batches = src(v, ctx)
            if isinstance(batches, Null):
                return batches
            if run is not None:
                batches = run(batches, ctx)
            return batches
        return fn

    def _b_indexed_apply(self, node: Named, probe: _ProbePlan,
                         nodes: List[SetApply],
                         absorbed: int = 0) -> BatchFn:
        """Batch twin of the scalar ``_indexed_apply``: compile both the
        probe-fed rest chain and the full batch scan, pick per
        execution on live catalog state."""
        name = node.name
        size = self.batch_size
        src = self.batches(node, "SET_APPLY needs a multiset input, got %r",
                           with_value=True)
        scan_run = self._compile_chain(nodes, extent_root=True)
        if absorbed:
            rest = [nodes[0]] + list(nodes[2:])
        else:
            rest = list(nodes[1:])
            if probe.residual is not None:
                rest.insert(0, probe.residual)
        # Probe output is extent members too, so the rest chain keeps
        # the scan-resistant first-stage deref.
        rest_run = self._compile_chain(rest, extent_root=True) \
            if rest else None
        path_desc = probe.describe(name)
        self.note("INDEX_PROBE candidate[%s] with scan fallback"
                  % path_desc)
        span = (self._span_stack[-1]
                if self.trace and not self._suppress else None)
        key = probe.key
        if probe.kind == "eq":
            const = probe.eq_const

            def open_probe(catalog: Any, ctx: EvalContext) -> Any:
                index = catalog.probe_keyed(name, key)
                if index is None:
                    return None
                return index.probe(const)
        elif probe.kind == "range":
            bounds = probe.bounds

            def open_probe(catalog: Any, ctx: EvalContext) -> Any:
                index = catalog.probe_ordered(name, key)
                if index is None:
                    return None
                return index.probe_range(**bounds)
        else:
            types = probe.types

            def open_probe(catalog: Any, ctx: EvalContext) -> Any:
                index = catalog.probe_typed(name)
                if index is None:
                    return None
                return iter(index.lookup(types).items())

        def fn(v: Any, ctx: EvalContext) -> Any:
            catalog = getattr(ctx, "indexes", None)
            if catalog is not None:
                chunks = open_probe(catalog, ctx)
                if chunks is not None:
                    ctx.tick("index_lookups")
                    if span is not None:
                        span.meta["access_path"] = path_desc
                    batches = _chunks_to_batches(chunks, size)
                    if rest_run is not None:
                        return rest_run(batches, ctx)
                    return batches
            if span is not None:
                span.meta["access_path"] = "scan[%s]" % name
            batches = src(v, ctx)
            if isinstance(batches, Null):
                return batches
            if scan_run is not None:
                batches = scan_run(batches, ctx)
            return batches
        return fn

    def _b_hash_join(self, match: HashJoinMatch) -> BatchFn:
        lsrc = self.batches(match.left, "× needs two multisets")
        rsrc = self.batches(match.right, "× needs two multisets")
        with self._no_trace():
            lkey = self.value(match.left_key)
            rkey = self.value(match.right_key)
        self.note("HASH_JOIN[%s = %s] (batched)"
                  % (match.pred.left.describe(),
                     match.pred.right.describe()))
        size = self.batch_size

        def gen(ls: Any, rs: Any, ctx: EvalContext) -> Iterator[Batch]:
            build: Dict[Any, list] = {}
            right_unk = 0
            right_live = 0
            built = 0
            for batch in rs:
                counts = batch.counts
                for i, b in enumerate(batch.elements):
                    nb = 1 if counts is None else counts[i]
                    built += nb
                    k = rkey(b, ctx)
                    if k is DNE:
                        continue
                    right_live += nb
                    if k is UNK:
                        right_unk += nb
                        continue
                    bucket = build.get(k)
                    if bucket is None:
                        bucket = build[k] = []
                    bucket.append((b, nb))
            unk_total = 0
            probed = 0
            oelems: List[Any] = []
            ocounts: List[int] = []
            for batch in ls:
                counts = batch.counts
                for i, a in enumerate(batch.elements):
                    na = 1 if counts is None else counts[i]
                    probed += na
                    k = lkey(a, ctx)
                    if k is DNE:
                        continue
                    if k is UNK:
                        unk_total += na * right_live
                        continue
                    if right_unk:
                        unk_total += na * right_unk
                    bucket = build.get(k)
                    if bucket is None:
                        continue
                    for b, nb in bucket:
                        pair = _flatten_pair(a, b)
                        if pair is DNE:
                            continue
                        oelems.append(pair)
                        ocounts.append(na * nb)
                        if len(oelems) >= size:
                            yield Batch(oelems, ocounts)
                            oelems, ocounts = [], []
            if unk_total:
                oelems.append(UNK)
                ocounts.append(unk_total)
            if oelems:
                yield Batch(oelems, ocounts)
            ctx.tick("hash_join_build", built)
            ctx.tick("hash_join_probes", probed)

        def fn(v: Any, ctx: EvalContext) -> Any:
            ls = lsrc(v, ctx)
            rs = rsrc(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            return gen(ls, rs, ctx)
        return fn

    # -- hash operators ------------------------------------------------

    def _b_DE(self, expr: DE, message: str, with_value: bool) -> BatchFn:
        src = self.batches(expr.source, "DE needs a multiset input")

        if (self.facts is not None
                and self.facts.is_duplicate_free(expr.source)):
            self.note("DE[pass-through: input proven duplicate-free]")

            def gen_passthrough(batches: Any,
                                ctx: EvalContext) -> Iterator[Batch]:
                stats = ctx.stats
                total = 0
                try:
                    for batch in batches:
                        total += batch.cardinality()
                        yield Batch(batch.elements, None)
                finally:
                    stats["elements_scanned"] = (
                        stats.get("elements_scanned", 0) + total)
                    stats["de_elements"] = (
                        stats.get("de_elements", 0) + total)

            def fn_passthrough(v: Any, ctx: EvalContext) -> Any:
                batches = src(v, ctx)
                if isinstance(batches, Null):
                    return batches
                return gen_passthrough(batches, ctx)
            return fn_passthrough

        def gen(batches: Any, ctx: EvalContext) -> Iterator[Batch]:
            stats = ctx.stats
            seen: set = set()
            add = seen.add
            total = 0
            try:
                for batch in batches:
                    total += batch.cardinality()
                    fresh = []
                    fappend = fresh.append
                    for element in batch.elements:
                        if element not in seen:
                            add(element)
                            fappend(element)
                    if fresh:
                        yield Batch(fresh, None)
            finally:
                stats["elements_scanned"] = (
                    stats.get("elements_scanned", 0) + total)
                stats["de_elements"] = (
                    stats.get("de_elements", 0) + total)

        def fn(v: Any, ctx: EvalContext) -> Any:
            batches = src(v, ctx)
            if isinstance(batches, Null):
                return batches
            return gen(batches, ctx)
        return fn

    def _b_Grp(self, expr: Grp, message: str, with_value: bool) -> BatchFn:
        with self._no_trace():
            key_fn = self.value(expr.by)
        src = self.batches(expr.source, "GRP needs a multiset input")
        size = self.batch_size

        def gen(batches: Any, ctx: EvalContext) -> Iterator[Batch]:
            groups: Dict[Any, Dict[Any, int]] = {}
            scanned = 0
            for batch in batches:
                counts = batch.counts
                for i, element in enumerate(batch.elements):
                    count = 1 if counts is None else counts[i]
                    scanned += count
                    key = key_fn(element, ctx)
                    if key is DNE:
                        continue
                    bucket = groups.get(key)
                    if bucket is None:
                        bucket = groups[key] = {}
                    bucket[element] = bucket.get(element, 0) + count
            if scanned:
                ctx.tick("elements_scanned", scanned)
                ctx.tick("grp_elements", scanned)
            out: List[Any] = []
            for bucket in groups.values():
                out.append(MultiSet._from_tally(bucket))
                if len(out) >= size:
                    yield Batch(out, None)
                    out = []
            if out:
                yield Batch(out, None)

        def fn(v: Any, ctx: EvalContext) -> Any:
            batches = src(v, ctx)
            if isinstance(batches, Null):
                return batches
            return gen(batches, ctx)
        return fn

    def _b_AddUnion(self, expr: AddUnion, message: str,
                    with_value: bool) -> BatchFn:
        lf = self.batches(expr.left, "⊎ needs two multisets")
        rf = self.batches(expr.right, "⊎ needs two multisets")

        def unfused(v: Any, ctx: EvalContext) -> Any:
            ls = lf(v, ctx)
            rs = rf(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            # Batch streams are additive: concatenation IS ⊎.
            return chain(ls, rs)

        fused = self._fused_union(expr)
        if fused is None:
            return unfused
        run, src_fn, src_name = fused

        def fn(v: Any, ctx: EvalContext) -> Any:
            # A live typed index on the extent beats any scan — take the
            # per-branch plans, which probe it (with their own scan
            # fallback), exactly like ``_b_indexed_apply``.
            catalog = getattr(ctx, "indexes", None)
            if catalog is not None and catalog.probe_typed(src_name) \
                    is not None:
                return unfused(v, ctx)
            batches = src_fn(v, ctx)
            if isinstance(batches, Null):
                return batches
            return run(batches, ctx)
        return fn

    def _fused_union(self, expr: AddUnion) -> Optional[Tuple[Callable,
                                                             BatchFn, str]]:
        """Recognize a ⊎ tree of typed SET_APPLY branches over one
        Named extent with pairwise-disjoint filters and access-path
        bodies — the shape ``build_union_plan`` emits — and compile it
        into a single generated scan.  Declined under tracing (the
        per-branch spans would vanish) and sanitizer mode (runtime
        checks attach per algebra node)."""
        if self.trace or self.sanitize is not None:
            return None
        leaves: List[Expr] = []
        stack: List[Expr] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, AddUnion):
                stack.append(node.right)
                stack.append(node.left)
            else:
                leaves.append(node)
        if len(leaves) < 2:
            return None
        src_node: Optional[Named] = None
        seen_types: set = set()
        branches: List[Tuple[frozenset, List[Tuple[str, Any]]]] = []
        for leaf in leaves:
            if not isinstance(leaf, SetApply) or leaf.type_filter is None:
                return None
            if not isinstance(leaf.source, Named):
                return None
            if src_node is None:
                src_node = leaf.source
            elif leaf.source.name != src_node.name:
                return None
            tf = frozenset(leaf.type_filter)
            if seen_types & tf:
                return None
            seen_types |= tf
            ops = _path_ops(leaf.body)
            if ops is None:
                return None
            branches.append((tf, ops))
        assert src_node is not None
        src_name = src_node.name
        src_fn = self.batches(src_node,
                              "SET_APPLY needs a multiset input, got %r",
                              with_value=True)
        run = _make_union_scan(branches)
        self.note("FUSED_UNION[%s: %d typed branches, one scan] "
                  "with indexed fallback" % (src_name, len(branches)))
        return run, src_fn, src_name

    def _b_Diff(self, expr: Diff, message: str,
                with_value: bool) -> BatchFn:
        lf = self.batches(expr.left, "− needs two multisets")
        rf = self.batches(expr.right, "− needs two multisets")

        def gen(ls: Any, rs: Any, ctx: EvalContext) -> Iterator[Batch]:
            right: Dict[Any, int] = {}
            rget = right.get
            for batch in rs:
                counts = batch.counts
                for i, element in enumerate(batch.elements):
                    count = 1 if counts is None else counts[i]
                    right[element] = rget(element, 0) + count
            used: Dict[Any, int] = {}
            for batch in ls:
                counts = batch.counts
                oelems: List[Any] = []
                ocounts: List[int] = []
                mixed = False
                for i, element in enumerate(batch.elements):
                    count = 1 if counts is None else counts[i]
                    held = rget(element, 0)
                    if held:
                        consumed = used.get(element, 0)
                        available = held - consumed
                        if available > 0:
                            take = available if available < count else count
                            used[element] = consumed + take
                            count -= take
                    if count > 0:
                        oelems.append(element)
                        ocounts.append(count)
                        if count != 1:
                            mixed = True
                if oelems:
                    yield Batch(oelems, ocounts if mixed else None)

        def fn(v: Any, ctx: EvalContext) -> Any:
            ls = lf(v, ctx)
            rs = rf(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            return gen(ls, rs, ctx)
        return fn

    def _b_Cross(self, expr: Cross, message: str,
                 with_value: bool) -> BatchFn:
        lf = self.batches(expr.left, "× needs two multisets")
        rf = self.batches(expr.right, "× needs two multisets")
        size = self.batch_size

        def gen(ls: Any, rs: Any, ctx: EvalContext) -> Iterator[Batch]:
            right: Dict[Any, int] = {}
            for batch in rs:
                counts = batch.counts
                for i, element in enumerate(batch.elements):
                    count = 1 if counts is None else counts[i]
                    right[element] = right.get(element, 0) + count
            rtotal = sum(right.values())
            right_items = list(right.items())
            pairs = 0
            oelems: List[Any] = []
            ocounts: List[int] = []
            for batch in ls:
                counts = batch.counts
                for i, a in enumerate(batch.elements):
                    na = 1 if counts is None else counts[i]
                    pairs += na * rtotal
                    for b, nb in right_items:
                        oelems.append(Tup(field1=a, field2=b))
                        ocounts.append(na * nb)
                        if len(oelems) >= size:
                            yield Batch(oelems, ocounts)
                            oelems, ocounts = [], []
            if oelems:
                yield Batch(oelems, ocounts)
            ctx.tick("cross_pairs", pairs)

        def fn(v: Any, ctx: EvalContext) -> Any:
            ls = lf(v, ctx)
            rs = rf(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            return gen(ls, rs, ctx)
        return fn

    def _b_SetCollapse(self, expr: SetCollapse, message: str,
                       with_value: bool) -> BatchFn:
        src = self.batches(expr.source,
                           "SET_COLLAPSE needs a multiset input")
        size = self.batch_size

        def gen(batches: Any, ctx: EvalContext) -> Iterator[Batch]:
            oelems: List[Any] = []
            ocounts: List[int] = []
            for batch in batches:
                counts = batch.counts
                for i, element in enumerate(batch.elements):
                    count = 1 if counts is None else counts[i]
                    if not isinstance(element, MultiSet):
                        raise TypeError(
                            "SET_COLLAPSE requires a multiset of "
                            "multisets; found %r" % (element,))
                    for inner, m in element.items():
                        oelems.append(inner)
                        ocounts.append(count * m)
                        if len(oelems) >= size:
                            yield Batch(oelems, ocounts)
                            oelems, ocounts = [], []
            if oelems:
                yield Batch(oelems, ocounts)

        def fn(v: Any, ctx: EvalContext) -> Any:
            batches = src(v, ctx)
            if isinstance(batches, Null):
                return batches
            return gen(batches, ctx)
        return fn

    def _b_SetCreate(self, expr: SetCreate, message: str,
                     with_value: bool) -> BatchFn:
        src = self.value(expr.source)

        def fn(v: Any, ctx: EvalContext) -> Any:
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            return iter((Batch([value], None),))
        return fn

    def _b_IndexedTypeScan(self, expr: IndexedTypeScan, message: str,
                           with_value: bool) -> BatchFn:
        name = expr.object_name
        types = expr.types
        use_index = self.access_paths != "off"
        size = self.batch_size
        span = (self._span_stack[-1]
                if self.trace and not self._suppress else None)

        def gen(collection: MultiSet,
                ctx: EvalContext) -> Iterator[Batch]:
            scanned = 0
            oelems: List[Any] = []
            ocounts: List[int] = []
            mixed = False
            for element, count in collection.items():
                scanned += count
                if exact_type_of(element, ctx) in types:
                    oelems.append(element)
                    ocounts.append(count)
                    if count != 1:
                        mixed = True
                    if len(oelems) >= size:
                        yield Batch(oelems, ocounts if mixed else None)
                        oelems, ocounts, mixed = [], [], False
            if oelems:
                yield Batch(oelems, ocounts if mixed else None)
            if scanned:
                ctx.tick("elements_scanned", scanned)

        def fn(v: Any, ctx: EvalContext) -> Any:
            catalog = getattr(ctx, "indexes", None) if use_index else None
            if catalog is not None:
                index = catalog.probe_typed(name)
                if index is not None:
                    ctx.tick("index_lookups")
                    if span is not None:
                        span.meta["access_path"] = (
                            "index partition probe[%s: %s]"
                            % (name, "|".join(sorted(types))))
                    return _tally_batches(index.lookup(types)._counts, size)
            if span is not None:
                span.meta["access_path"] = "scan[%s]" % name
            collection = ctx.lookup(name)
            if not isinstance(collection, MultiSet):
                raise MethodError("IndexedTypeScan needs a multiset object")
            return gen(collection, ctx)
        return fn


# ---------------------------------------------------------------------------
# Instrumentation wrappers (traced / sanitized builds only)
# ---------------------------------------------------------------------------

def _traced_batches(fn: BatchFn, span: Any) -> BatchFn:
    """Count and time a batch stream as it is pulled; cardinalities are
    occurrence totals, matching the chunk-stream tracer."""
    def traced(v: Any, ctx: EvalContext) -> Any:
        started = perf_counter()
        try:
            batches = fn(v, ctx)
        finally:
            span.calls += 1
            span.wall += perf_counter() - started
        if isinstance(batches, Null):
            if batches is DNE:
                span.dne_out += 1
            return batches

        def watch() -> Iterator[Batch]:
            it = iter(batches)
            while True:
                t0 = perf_counter()
                try:
                    batch = next(it)
                except StopIteration:
                    span.wall += perf_counter() - t0
                    return
                span.wall += perf_counter() - t0
                span.rows_out += len(batch.elements)
                span.card_out += batch.cardinality()
                span.meta["batches"] = span.meta.get("batches", 0) + 1
                yield batch
        return watch()
    return traced


def _sanitized_batches(fn: BatchFn, checks: Any, size: int) -> BatchFn:
    """Run the analyzer's runtime checks over a batch stream by
    adapting it through the chunk protocol the checker watches."""
    def sanitized(v: Any, ctx: EvalContext) -> Any:
        batches = fn(v, ctx)
        if isinstance(batches, Null):
            checks.check_null_stream(batches)
            return batches
        watched = checks.watch_chunks(_batches_to_chunks(batches))
        return _chunks_to_batches(watched, size)
    return sanitized


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def compile_batch_plan(expr: Expr, ctx: "EvalContext | None" = None,
                       facts: Any = None, trace: bool = False,
                       cost_model: Any = None, access_paths: str = "auto",
                       sanitize: Any = None,
                       batch_size: int = DEFAULT_BATCH_SIZE) -> Pipeline:
    """Lower *expr* into a batch-executing :class:`~.compiler.Pipeline`.

    Same contract as :func:`~.compiler.compile_plan` — facts licenses,
    trace span trees, sanitizer mode, probe lowering with per-execution
    scan fallbacks — plus *batch_size*, the number of occurrence slots
    per :class:`Batch`.  Results are bit-identical to the interpreter
    and the scalar compiled engine.
    """
    compiler = BatchPlanCompiler(batch_size=batch_size, facts=facts,
                                 trace=trace, cost_model=cost_model,
                                 access_paths=access_paths,
                                 sanitize=sanitize)
    run = compiler.batch_value(expr)
    return Pipeline(expr, run, compiler.notes,
                    trace_root=compiler.trace_root)
