"""The plan compiler: algebra trees → streaming physical pipelines.

The interpreter (``Expr.evaluate``) materializes an immutable
:class:`~repro.core.values.MultiSet` at every operator, so a chain of
SET_APPLYs re-tallies counts once per node and a repeated DEREF probes
the store every time — exactly the overheads the paper's Example 2
rewrites are fighting at the logical level.  This module fights them at
the *physical* level, leaving the algebra untouched:

* **Occurrence streams.**  Collection-valued operators compile to
  functions returning an iterator of ``(element, count)`` chunks instead
  of a built ``MultiSet``.  A chunk stream is a multiset in transit: the
  same element may appear in several chunks (their counts add), and the
  only materialization happens where a multiset *value* is genuinely
  required (the query result, GRP's group members, operands of value
  operators).
* **Operator fusion.**  A chain of adjacent SET_APPLYs — including the
  derived σ, whose body is ``COMP_P(INPUT)`` — collapses into a single
  loop driving a list of per-occurrence stages, so N logical operators
  cost one pass and zero intermediate tallies.
* **Hash physical operators.**  DE, GRP, − and × run hash-based; the
  appendix's ``rel_join`` shape (SET_APPLY ∘ SET_APPLY[COMP] ∘ ×) with
  an equality :class:`~repro.core.predicates.Atom` is detected by
  :func:`match_hash_join` and lowered to a build/probe hash join that
  never forms the quadratic pair set.
* **Deref caching.**  Compiled DEREF (and method dispatch over Ref
  receivers) consults the per-query LRU :class:`~.cache.DerefCache` on
  the context, ticking ``deref_cache_hit`` / ``deref_cache_miss``.

Semantics are identical to the interpreter: the ``dne``/``unk`` null
discipline, duplicate cardinalities, typed-SET_APPLY filtering, and
Kleene predicate logic all behave occurrence-for-occurrence the same
(the differential suite in ``tests/engine`` asserts this over generated
plans).  Work counters keep their names and aggregate totals, but are
flushed once per operator rather than once per element.

A compiled :class:`Pipeline` is reusable across evaluation contexts of
the same database; method dispatch memoizes compiled bodies per exact
type, so redefining methods between executions requires recompiling.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import chain
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional

from ...obs import Span

from ..expr import (AlgebraError, Const, EvalContext, Expr, Func, Input,
                    Named, _UNBOUND, substitute_input)
from ..methods import (IndexedTypeScan, MethodCall, MethodError, Param,
                       bind_params)
from ..operators.arrays import (ArrApply, ArrCat, ArrCollapse, ArrCreate,
                                ArrCross, ArrDE, ArrDiff, ArrExtract, SubArr)
from ..operators.multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply,
                                  SetCollapse, SetCreate, exact_type_of)
from ..operators.refs import Deref, RefOp
from ..operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..predicates import (And, Atom, Comp, Not, Predicate, TruePred,
                          _compare_scalars, F, T, U, kleene_not)
from ..values import DNE, UNK, Arr, MultiSet, Null, Ref, Tup
from .cache import DerefCache

_MISSING = object()

#: A compiled value form: (input_value, ctx) -> algebra value.
ValueFn = Callable[[Any, EvalContext], Any]
#: A compiled stream form: (input_value, ctx) -> Null | iter((elem, count)).
StreamFn = Callable[[Any, EvalContext], Any]


def _input_fn(v, ctx):
    """The compiled INPUT leaf (a shared singleton; see _v_Input)."""
    if v is _UNBOUND:
        raise AlgebraError("INPUT used outside any binding operator")
    return v


def _fresh_cache(ctx: EvalContext) -> DerefCache:
    """A new deref cache bound to *ctx*, stamped with the store's
    current mutation version so later runs can detect staleness."""
    cache = ctx.deref_cache = DerefCache()
    if ctx.store is not None:
        cache.version = getattr(ctx.store, "version", None)
    return cache


def cached_deref(ctx: EvalContext, oid: Any) -> Any:
    """Fetch *oid* through the context's per-query LRU deref cache.

    Bumps the cache's ``hits``/``misses`` counters; the per-run deltas
    reach ``ctx.stats`` when the enclosing :class:`Pipeline` finishes
    (one cache access ≡ one interpreter ``deref_count`` tick).
    """
    cache = ctx.deref_cache
    if cache is None:
        cache = _fresh_cache(ctx)
    found = cache.get(oid, _MISSING)
    if found is not _MISSING:
        cache.hits += 1
        return found
    cache.misses += 1
    found = ctx.store.get(oid, default=DNE)
    cache.put(oid, found)
    return found


# ---------------------------------------------------------------------------
# Hash-join pattern detection
# ---------------------------------------------------------------------------

#: The TUP_CAT(field1, field2) flattener rel_join wraps around its COMP.
_PAIR_FLATTEN = TupCat(TupExtract("field1", Input()),
                       TupExtract("field2", Input()))

_PROBE_PARAM = "__hash_join_side__"


class HashJoinMatch:
    """A recognized rel_join shape, split into hash-join ingredients.

    ``left_key`` / ``right_key`` are expressions over the *element* of
    the respective side (INPUT = the element), derived from the equality
    atom's operands by stripping the ``fieldN`` pair access.
    """

    __slots__ = ("left", "right", "left_key", "right_key", "pred")

    def __init__(self, left: Expr, right: Expr, left_key: Expr,
                 right_key: Expr, pred: Atom):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.pred = pred


def _replace_free(expr: Expr, pattern: Expr, replacement: Expr) -> Expr:
    """Replace free (INPUT-binding-respecting) occurrences of a subtree."""
    if expr == pattern:
        return replacement
    updates = {}
    for field in expr._fields:
        if field in expr._binding_fields:
            continue
        value = getattr(expr, field)
        if isinstance(value, Expr):
            new = _replace_free(value, pattern, replacement)
            if new is not value:
                updates[field] = new
        elif isinstance(value, (list, tuple)):
            new_seq = [_replace_free(item, pattern, replacement)
                       if isinstance(item, Expr) else item for item in value]
            if any(a is not b for a, b in zip(new_seq, value)):
                updates[field] = tuple(new_seq) if isinstance(
                    value, tuple) else new_seq
    return expr.replace(**updates) if updates else expr


def _side_key(operand: Expr, side: int) -> Optional[Expr]:
    """*operand* rewritten as a key over one join side's element.

    Returns None when the operand also touches the other side (or the
    raw pair), in which case a hash key cannot be extracted.
    """
    marker = TupExtract("field%d" % side, Input())
    replaced = _replace_free(operand, marker, Param(_PROBE_PARAM))
    if replaced.uses_input():
        return None
    return bind_params(replaced, {_PROBE_PARAM: Input()})


def match_hash_join(expr: Expr) -> Optional[HashJoinMatch]:
    """Recognize the appendix's rel_join composition with an equality
    predicate:  SET_APPLY_{TUP_CAT} ∘ SET_APPLY_{COMP_{k1 = k2}} ∘ ×.

    Used both by the compiler (to emit the hash-join physical operator)
    and by the cost model (to rank plans the way the compiled engine
    will actually run them).
    """
    if not isinstance(expr, SetApply) or expr.type_filter is not None:
        return None
    if expr.body != _PAIR_FLATTEN:
        return None
    inner = expr.source
    if not isinstance(inner, SetApply) or inner.type_filter is not None:
        return None
    body = inner.body
    if not isinstance(body, Comp) or not isinstance(body.source, Input):
        return None
    pred = body.pred
    if not isinstance(pred, Atom) or pred.op != "=":
        return None
    cross = inner.source
    if not isinstance(cross, Cross):
        return None
    for left_side in (1, 2):
        left_key = _side_key(pred.left if left_side == 1 else pred.right, 1)
        right_key = _side_key(pred.right if left_side == 1 else pred.left, 2)
        if left_key is not None and right_key is not None:
            return HashJoinMatch(cross.left, cross.right,
                                 left_key, right_key, pred)
    return None


def _flatten_pair(a: Any, b: Any) -> Any:
    """TUP_CAT(field1, field2) applied to the (a, b) join pair."""
    if a is DNE or a is UNK:
        return a
    if b is DNE or b is UNK:
        return b
    if not isinstance(a, Tup) or not isinstance(b, Tup):
        raise AlgebraError("TUP_CAT needs two tuples")
    return a.concat(b)


# ---------------------------------------------------------------------------
# Index-probe pattern detection
# ---------------------------------------------------------------------------

_RANGE_OPS = ("<", "<=", ">", ">=")
_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _atom_probe(pred: Predicate) -> Optional[tuple]:
    """An atom in ``key <op> literal`` form: ``(key_expr, op, const)``
    normalized with the constant on the right (the comparator flipped
    when the literal was on the left), or None when the shape doesn't
    admit an index probe.  Null literals are excluded — their verdicts
    (F for dne, U for unk) never consult a comparator, so the generic
    filter keeps them."""
    if not isinstance(pred, Atom):
        return None
    op = pred.op
    if op != "=" and op not in _RANGE_OPS:
        return None
    left, right = pred.left, pred.right
    if isinstance(right, Const) and not isinstance(left, Const):
        key, const = left, right.value
    elif isinstance(left, Const) and not isinstance(right, Const):
        key, const = right, left.value
        op = _FLIP_OP.get(op, op)
    else:
        return None
    if isinstance(const, Null):
        return None
    if not key.uses_input():
        return None
    return key, op, const


class _ProbePlan:
    """A recognized index-probe shape for the innermost fused stage.

    ``kind`` is ``"eq"`` (KeyIndex), ``"range"`` (OrderedIndex — one
    bound or a between), or ``"typed"`` (TypedPartitionIndex).  For a
    typed probe only the filter is absorbed, so ``residual`` carries the
    stage's body as a filterless SET_APPLY for the rest of the chain.
    """

    __slots__ = ("kind", "key", "eq_const", "bounds", "types", "residual",
                 "pred")

    def __init__(self, kind: str, key: Optional[Expr] = None,
                 eq_const: Any = None, bounds: Optional[dict] = None,
                 types: Optional[frozenset] = None,
                 residual: Optional[Expr] = None,
                 pred: Optional[Predicate] = None):
        self.kind = kind
        self.key = key
        self.eq_const = eq_const
        self.bounds = bounds
        self.types = types
        self.residual = residual
        self.pred = pred

    def describe(self, name: str) -> str:
        if self.kind == "eq":
            return "index probe[%s: key %s = %r]" % (
                name, self.key.describe(), self.eq_const)
        if self.kind == "range":
            b = self.bounds
            low = ("%r %s " % (b["low"], "<=" if b["incl_low"] else "<")
                   if "low" in b else "")
            high = (" %s %r" % ("<=" if b["incl_high"] else "<", b["high"])
                    if "high" in b else "")
            return "index range probe[%s: %s%s%s]" % (
                name, low, self.key.describe(), high)
        return "index partition probe[%s: %s]" % (
            name, "|".join(sorted(self.types)))


def _match_probe(stage: SetApply) -> Optional[_ProbePlan]:
    """The innermost fused stage as an index probe, if recognized:
    a typed filter → partition probe; a σ with a single equality atom
    against a literal → key probe; a σ with a single range atom (or an
    AND of a lower and an upper bound on the same key whose literals
    are mutually comparable) → ordered probe."""
    if stage.type_filter is not None:
        return _ProbePlan("typed", types=frozenset(stage.type_filter),
                          residual=SetApply(stage.body, stage.source))
    body = stage.body
    if not isinstance(body, Comp) or not isinstance(body.source, Input):
        return None
    pred = body.pred
    one = _atom_probe(pred)
    if one is not None:
        key, op, const = one
        if op == "=":
            return _ProbePlan("eq", key=key, eq_const=const, pred=pred)
        if op in ("<", "<="):
            bounds = {"high": const, "incl_high": op == "<="}
        else:
            bounds = {"low": const, "incl_low": op == ">="}
        return _ProbePlan("range", key=key, bounds=bounds, pred=pred)
    if isinstance(pred, And):
        a = _atom_probe(pred.left)
        b = _atom_probe(pred.right)
        if a is None or b is None or a[0] != b[0]:
            return None
        lower = a if a[1] in (">", ">=") else b if b[1] in (">", ">=") else None
        upper = a if a[1] in ("<", "<=") else b if b[1] in ("<", "<=") else None
        if lower is None or upper is None or lower is upper:
            return None
        # The two literals must order against each other — otherwise an
        # in-class key gets one definite and one U verdict, which a
        # single aggregated probe cannot reproduce.
        if _compare_scalars("<", lower[2], upper[2]) == U:
            return None
        bounds = {"low": lower[2], "incl_low": lower[1] == ">=",
                  "high": upper[2], "incl_high": upper[1] == "<="}
        return _ProbePlan("range", key=a[0], bounds=bounds, pred=pred)
    return None


# ---------------------------------------------------------------------------
# Fused SET_APPLY stage execution
# ---------------------------------------------------------------------------

#: Stage kinds in a fused SET_APPLY chain.
class _FusedCodegen:
    """Generate the driver for a fused SET_APPLY chain as straight-line
    code — whole-chain code generation, à la compiling query engines.

    Stages run innermost-first; an occurrence either survives all of
    them (possibly transformed, possibly turned into ``unk`` by a U
    predicate) or is dropped via ``continue``.  Per-stage work counters
    are plain local integers, flushed once in ``finally`` (which also
    covers early close of a partially-consumed stream), so the totals
    match the interpreter's per-element ticks without per-element dict
    costs — and without any per-element stage dispatch.

    Recognized body shapes — DEREF/TUP_EXTRACT/π chains over INPUT and
    ``path = literal`` σ atoms — are additionally *inlined* into the
    generated loop (including the deref cache probe, whose cache/store
    locals are hoisted out of the loop), so the common
    functional-join pipeline runs with no per-element closure calls at
    all.  Anything else falls back to one compiled-closure call per
    stage, which is still fused.

    Null discipline inside the generated loop: ``dne`` never travels
    (multisets drop it at the source and every step ``continue``\\ s on
    it), and ``unk`` is absorbing — each inlined step is guarded by
    ``if value is not UNK`` so a null simply skips ahead, exactly the
    interpreter's propagation.
    """

    def __init__(self, compiler: "PlanCompiler"):
        self.compiler = compiler
        self.namespace = {
            "DNE": DNE, "UNK": UNK, "F": F, "U": U,
            "exact_type_of": exact_type_of, "AlgebraError": AlgebraError,
            "Tup": Tup, "Ref": Ref, "DerefCache": DerefCache,
            "_fresh_cache": _fresh_cache, "_MISSING": _MISSING,
        }
        self.uses_deref = False
        self.inlined = 0

    # -- inline emitters ----------------------------------------------

    def path_steps(self, expr: Expr, sid: str) -> Optional[List[List[str]]]:
        """Code blocks transforming the loop's ``value`` variable along
        an INPUT-rooted access path, or None when not inlinable.

        Each block is guarded on ``value is not UNK`` and ``continue``s
        on a ``dne`` result, mirroring null propagation + map-drop.
        """
        if isinstance(expr, Input):
            return []
        if isinstance(expr, TupExtract):
            inner = self.path_steps(expr.source, sid)
            if inner is None:
                return None
            key = "%s_f%d" % (sid, len(inner))
            msg = "%s_m%d" % (sid, len(inner))
            self.namespace[key] = expr.field
            self.namespace[msg] = ("TUP_EXTRACT(%s) needs a tuple input, "
                                   "got %%r" % expr.field)
            return inner + [[
                "if value is not UNK:",
                "    if not isinstance(value, Tup):",
                "        raise AlgebraError(%s %% (value,))" % msg,
                "    try:",
                "        value = value._map[%s]" % key,
                "    except KeyError:",
                "        value = value[%s]" % key,
                "    if value is DNE: continue",
            ]]
        if isinstance(expr, Pi):
            inner = self.path_steps(expr.source, sid)
            if inner is None:
                return None
            key = "%s_n%d" % (sid, len(inner))
            self.namespace[key] = expr.names
            return inner + [[
                "if value is not UNK:",
                "    if not isinstance(value, Tup):",
                "        raise AlgebraError('π needs a tuple input, "
                "got %r' % (value,))",
                "    value = value.project(%s)" % key,
            ]]
        if isinstance(expr, Deref):
            inner = self.path_steps(expr.source, sid)
            if inner is None:
                return None
            self.uses_deref = True
            return inner + [[
                "if value is not UNK:",
                "    if not isinstance(value, Ref):",
                "        raise AlgebraError('DEREF needs a reference, "
                "got %r' % (value,))",
                "    if store is None:",
                "        raise AlgebraError('DEREF needs an object store "
                "in the context')",
                "    oid = value.oid",
                "    value = entries.get(oid, _MISSING)",
                "    if value is _MISSING:",
                "        cache.misses += 1",
                "        value = store.get(oid, default=DNE)",
                "        entries[oid] = value",
                "        if len(entries) > capacity:",
                "            entries.popitem(last=False)",
                "    else:",
                "        cache.hits += 1",
                "        entries.move_to_end(oid)",
                "    if value is DNE: continue",
            ]]
        return None

    def filter_lines(self, pred: Predicate, i: int) -> Optional[List[str]]:
        """Inline an equality/inequality σ atom against a literal:
        ``Atom(TupExtract(field, INPUT), = | !=, Const)``.  Returns the
        code block (which manages ce/ae counters and keep/drop), or
        None to fall back to a compiled predicate closure.
        """
        if not isinstance(pred, Atom) or pred.op not in ("=", "!="):
            return None
        left, right = pred.left, pred.right
        if not (isinstance(left, TupExtract) and isinstance(left.source, Input)
                and isinstance(right, Const)):
            return None
        if isinstance(right.value, Null):
            return None  # null literal: verdicts never reach =; keep generic
        key, cst, msg = "p%d_f" % i, "p%d_c" % i, "p%d_m" % i
        self.namespace[key] = left.field
        self.namespace[cst] = right.value
        self.namespace[msg] = ("TUP_EXTRACT(%s) needs a tuple input, got %%r"
                               % left.field)
        if pred.op == "=":
            verdicts = ["    elif lhs != %s: continue" % cst]
        else:
            verdicts = ["    elif lhs == %s: continue" % cst]
        return [
            "if value is not UNK:",
            "    ce%d += 1" % i,
            "    if not isinstance(value, Tup):",
            "        raise AlgebraError(%s %% (value,))" % msg,
            "    try:",
            "        lhs = value._map[%s]" % key,
            "    except KeyError:",
            "        lhs = value[%s]" % key,
            "    ae%d += 1" % i,
            "    if lhs is DNE: continue",
            "    if lhs is UNK: value = UNK",
        ] + verdicts

    # -- assembly ------------------------------------------------------

    def build(self, nodes: List[SetApply]) -> Callable:
        """*nodes* is the SET_APPLY chain, innermost first."""
        compiler = self.compiler
        namespace = self.namespace
        head = ["def _fused(chunks, ctx):"]
        body: List[str] = []
        accs: List[str] = []
        flush: List[str] = []
        ind = "            "
        def bump(counter: str, acc: str) -> str:
            return ("stats[%r] = sget(%r, 0) + %s"
                    % (counter, counter, acc))
        for i, node in enumerate(nodes):
            if node.type_filter is not None:
                namespace["tf%d" % i] = node.type_filter
                accs += ["sc%d" % i, "ap%d" % i]
                flush.append("if sc%d: %s"
                             % (i, bump("elements_scanned", "sc%d" % i)))
                flush.append("if ap%d: %s"
                             % (i, bump("set_apply_elements", "ap%d" % i)))
                body.append(ind + "sc%d += count" % i)
                body.append(ind + "if exact_type_of(value, ctx) "
                                  "not in tf%d: continue" % i)
                body.append(ind + "ap%d += count" % i)
            else:
                # No filter: every scanned occurrence is also applied,
                # so one counter feeds both totals.
                accs.append("sc%d" % i)
                flush.append("if sc%d:" % i)
                flush.append("    " + bump("elements_scanned", "sc%d" % i))
                flush.append("    " + bump("set_apply_elements", "sc%d" % i))
                body.append(ind + "sc%d += count" % i)
            expr = node.body
            if isinstance(expr, Comp) and isinstance(expr.source, Input):
                # The derived σ; unk passes through untested (COMP
                # propagates nulls), dne cannot occur mid-stream.
                accs.append("ce%d" % i)
                flush.append("if ce%d: %s"
                             % (i, bump("comp_evals", "ce%d" % i)))
                inline = self.filter_lines(expr.pred, i)
                if inline is not None:
                    self.inlined += 1
                    accs.append("ae%d" % i)
                    flush.append("if ae%d: %s"
                                 % (i, bump("atom_evals", "ae%d" % i)))
                    body += [ind + line for line in inline]
                else:
                    namespace["f%d" % i] = compiler.pred(expr.pred)
                    body += [ind + line for line in [
                        "if value is not UNK:",
                        "    ce%d += 1" % i,
                        "    verdict = f%d(value, ctx)" % i,
                        "    if verdict == F: continue",
                        "    if verdict == U: value = UNK",
                    ]]
            else:
                steps = self.path_steps(expr, "s%d" % i)
                if steps is not None:
                    self.inlined += 1
                    for step in steps:
                        body += [ind + line for line in step]
                else:
                    namespace["f%d" % i] = compiler.value(expr)
                    body.append(ind + "value = f%d(value, ctx)" % i)
                    body.append(ind + "if value is DNE: continue")
        body.append(ind + "yield value, count")
        # The stats dict is captured when the generator STARTS, and the
        # finally-flush writes into that capture — never into whatever
        # ctx.stats points at by flush time.  A generator left suspended
        # by a downstream exception is only closed when the traceback is
        # released (possibly after the next statement's begin_query()
        # swapped the dict), and its counters belong to the statement
        # that ran it.
        prologue = ["    %s = 0" % " = ".join(accs),
                    "    stats = ctx.stats",
                    "    sget = stats.get"]
        if self.uses_deref:
            prologue += [
                "    store = ctx.store",
                "    cache = ctx.deref_cache",
                "    if cache is None:",
                "        cache = _fresh_cache(ctx)",
                "    entries = cache._entries",
                "    capacity = cache.capacity",
            ]
        source = "\n".join(
            head + prologue + ["    try:", "        for value, count in chunks:"]
            + body + ["    finally:"]
            + ["        " + line for line in flush])
        exec(source, namespace)
        return namespace["_fused"]


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

class PlanCompiler:
    """Lower an :class:`Expr` tree into compiled closures.

    ``value(expr)`` yields the full-value form; ``stream(expr, …)`` the
    chunked form for multiset producers.  Unknown node classes fall back
    to their own ``evaluate`` (keeping the engine total over ad-hoc
    extension operators).
    """

    def __init__(self, facts: Any = None, trace: bool = False,
                 cost_model: Any = None, access_paths: str = "auto",
                 sanitize: Any = None) -> None:
        self.notes: List[str] = []
        #: A ``PlanAnalysis`` (from ``repro.core.analysis.absint``) in
        #: *sanitizer* mode: every compiled closure is wrapped so each
        #: execution asserts the analyzer's proven facts (cardinality
        #: inside the interval, no impossible null, no duplicate where
        #: duplicate-freedom was claimed).  Mutually exclusive with
        #: *consuming* analyzer licenses: while sanitizing, the
        #: statically-empty short-circuit and bounds-check elision are
        #: disabled so the facts are tested, not trusted.
        self.sanitize = sanitize
        #: Optional ``CostModel`` consulted when ``access_paths`` is
        #: ``"auto"``: a recognized probe shape is only lowered when the
        #: model prices the probe below the scan (calibrated
        #: selectivities can veto an index on an unselective predicate).
        self.cost_model = cost_model
        #: ``"auto"`` (probe when an index is available, cost model may
        #: veto), ``"force"`` (probe whenever the shape matches), or
        #: ``"off"`` (never lower probes — pure scans, the pre-index
        #: engine).  Every probe keeps a scan fallback: the catalog is
        #: consulted per execution, so a pipeline stays correct when
        #: indexes appear, disappear, or go stale between runs.
        self.access_paths = access_paths or "auto"
        #: Verified plan facts (``PlanFacts`` from the analysis layer, or
        #: any object with ``is_duplicate_free(expr)``) used as
        #: optimization licenses; None disables fact-based lowering.
        self.facts = facts
        #: With *trace* on, dispatch builds a span tree mirroring the
        #: physical plan (one span per physical operator; fused chains
        #: are one operator) and wraps compiled closures so runs record
        #: wall time and (element, count) output cardinalities.  Off —
        #: the default — dispatch takes the un-instrumented path and
        #: compiled code is byte-identical to the untraced build.
        self.trace = trace
        self.trace_root: Optional[Span] = None
        self._span_stack: List[Span] = []
        #: Depth of subscript-body compilation: bodies, predicates, and
        #: keys run per element and are part of their operator's span,
        #: so dispatch below a body never opens spans of its own.
        self._suppress = 0
        if trace:
            self.trace_root = Span("compiled-plan", kind="plan")
            self._span_stack = [self.trace_root]

    def note(self, text: str) -> None:
        self.notes.append(text)

    @contextmanager
    def _no_trace(self) -> Iterator[None]:
        self._suppress += 1
        try:
            yield
        finally:
            self._suppress -= 1

    def _open_span(self, expr: Expr) -> Span:
        from ..explain import _label
        span = Span(_label(expr), kind="operator", expr=expr)
        self._span_stack[-1].add(span)
        self._span_stack.append(span)
        return span

    # -- dispatch ------------------------------------------------------

    def value(self, expr: Expr) -> ValueFn:
        if (self.trace and not self._suppress
                and not isinstance(expr, (Input, Const, Param))):
            span = self._open_span(expr)
            try:
                fn = self._value_fn(expr)
            finally:
                self._span_stack.pop()
            fn = _traced_value(fn, span)
        else:
            fn = self._value_fn(expr)
        if (self.sanitize is not None
                and not isinstance(expr, (Input, Const, Param))):
            checks = self.sanitize.runtime_checks(
                expr, dup_free=self._claimed_dupfree(expr))
            if checks is not None:
                fn = _sanitized_value(fn, checks)
        return fn

    def _claimed_dupfree(self, expr: Expr) -> bool:
        return (self.facts is not None
                and self.facts.is_duplicate_free(expr))

    def _statically_empty_sort(self, expr: Expr) -> Optional[str]:
        """The proven-empty sort of *expr* when licensed to skip it
        (never while sanitizing: then the proof is tested instead)."""
        if self.sanitize is not None or self.facts is None:
            return None
        probe = getattr(self.facts, "statically_empty_sort", None)
        return probe(expr) if probe is not None else None

    def _value_fn(self, expr: Expr) -> ValueFn:
        empty_sort = self._statically_empty_sort(expr)
        if empty_sort is not None:
            self.note("EMPTY[static] %s" % type(expr).__name__)
            empty = MultiSet() if empty_sort == "set" else Arr([])
            return lambda v, ctx: empty
        method = getattr(self, "_v_%s" % type(expr).__name__, None)
        if method is not None:
            return method(expr)
        evaluate = expr.evaluate
        self.note("INTERP %s" % type(expr).__name__)
        return lambda v, ctx: evaluate(v, ctx)

    def stream(self, expr: Expr, message: str,
               with_value: bool = False) -> StreamFn:
        if self._statically_empty_sort(expr) == "set":
            self.note("EMPTY[static] %s" % type(expr).__name__)
            return lambda v, ctx: iter(())
        method = getattr(self, "_s_%s" % type(expr).__name__, None)
        if method is None:
            # The fallback adapts the value form, which opens the span
            # (and the sanitizer wrapper) itself — no second layer here.
            return self._adapt(self.value(expr), message, with_value)
        if self.trace and not self._suppress:
            span = self._open_span(expr)
            try:
                fn = method(expr)
            finally:
                self._span_stack.pop()
            fn = _traced_stream(fn, span)
        else:
            fn = method(expr)
        if self.sanitize is not None:
            checks = self.sanitize.runtime_checks(
                expr, dup_free=self._claimed_dupfree(expr))
            if checks is not None:
                fn = _sanitized_stream(fn, checks)
        return fn

    def _adapt(self, value_fn: ValueFn, message: str,
               with_value: bool) -> StreamFn:
        """Stream form of a value producer: iterate its tally zero-copy."""
        def fn(v, ctx):
            value = value_fn(v, ctx)
            if isinstance(value, Null):
                return value
            if not isinstance(value, MultiSet):
                raise AlgebraError(message % (value,) if with_value
                                   else message)
            return iter(value.items())
        return fn

    def _materialize(self, stream_fn: StreamFn) -> ValueFn:
        """Value form of a stream producer: tally chunks into a MultiSet."""
        def fn(v, ctx):
            chunks = stream_fn(v, ctx)
            if isinstance(chunks, Null):
                return chunks
            tally: Dict[Any, int] = {}
            get = tally.get
            for element, count in chunks:
                tally[element] = get(element, 0) + count
            return MultiSet._from_tally(tally)
        return fn

    # -- leaves --------------------------------------------------------

    def _v_Input(self, expr: Input) -> ValueFn:
        # The shared singleton lets operator compilers recognize an
        # INPUT source (`src is _input_fn`) and inline the pass-through,
        # removing one closure call per element on the hottest paths.
        return _input_fn

    def _v_Named(self, expr: Named) -> ValueFn:
        name = expr.name
        return lambda v, ctx: ctx.lookup(name)

    def _v_Const(self, expr: Const) -> ValueFn:
        value = expr.value
        return lambda v, ctx: value

    def _v_Param(self, expr: Param) -> ValueFn:
        name = expr.name
        def fn(v, ctx):
            raise MethodError(
                "unbound method parameter %r (instantiate the method body "
                "before evaluating it)" % name)
        return fn

    def _v_Func(self, expr: Func) -> ValueFn:
        name = expr.name
        arg_fns = [self.value(a) for a in expr.args]
        def fn(v, ctx):
            values = [f(v, ctx) for f in arg_fns]
            for value in values:
                if value is DNE:
                    return DNE
            for value in values:
                if value is UNK:
                    return UNK
            ctx.tick("func_calls")
            return ctx.function(name)(*values)
        return fn

    # -- tuple operators ----------------------------------------------

    def _v_TupExtract(self, expr: TupExtract) -> ValueFn:
        field = expr.field
        src = self.value(expr.source)
        if src is _input_fn:
            def fn(v, ctx):
                if v is DNE or v is UNK:
                    return v
                if not isinstance(v, Tup):
                    if v is _UNBOUND:
                        return _input_fn(v, ctx)
                    raise AlgebraError(
                        "TUP_EXTRACT(%s) needs a tuple input, got %r"
                        % (field, v))
                return v[field]
            return fn
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Tup):
                raise AlgebraError(
                    "TUP_EXTRACT(%s) needs a tuple input, got %r"
                    % (field, value))
            return value[field]
        return fn

    def _v_Pi(self, expr: Pi) -> ValueFn:
        names = expr.names
        src = self.value(expr.source)
        if src is _input_fn:
            def fn(v, ctx):
                if v is DNE or v is UNK:
                    return v
                if not isinstance(v, Tup):
                    if v is _UNBOUND:
                        return _input_fn(v, ctx)
                    raise AlgebraError("π needs a tuple input, got %r" % (v,))
                return v.project(names)
            return fn
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Tup):
                raise AlgebraError("π needs a tuple input, got %r" % (value,))
            return value.project(names)
        return fn

    def _v_TupCat(self, expr: TupCat) -> ValueFn:
        lf = self.value(expr.left)
        rf = self.value(expr.right)
        def fn(v, ctx):
            lhs = lf(v, ctx)
            rhs = rf(v, ctx)
            if lhs is DNE or lhs is UNK:
                return lhs
            if rhs is DNE or rhs is UNK:
                return rhs
            if not isinstance(lhs, Tup) or not isinstance(rhs, Tup):
                raise AlgebraError("TUP_CAT needs two tuples")
            return lhs.concat(rhs)
        return fn

    def _v_TupCreate(self, expr: TupCreate) -> ValueFn:
        field = expr.field
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            return Tup({field: value})
        return fn

    # -- references & methods ------------------------------------------

    def _v_Deref(self, expr: Deref) -> ValueFn:
        src = self.value(expr.source)
        input_src = src is _input_fn
        def fn(v, ctx):
            if input_src:
                value = v if v is not _UNBOUND else _input_fn(v, ctx)
            else:
                value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Ref):
                raise AlgebraError("DEREF needs a reference, got %r" % (value,))
            if ctx.store is None:
                raise AlgebraError("DEREF needs an object store in the context")
            # cached_deref, inlined down to the OrderedDict: one deref
            # per element is the hot path of every functional join.
            cache = ctx.deref_cache
            if cache is None:
                cache = _fresh_cache(ctx)
            entries = cache._entries
            oid = value.oid
            found = entries.get(oid, _MISSING)
            if found is not _MISSING:
                cache.hits += 1
                entries.move_to_end(oid)
                return found
            cache.misses += 1
            found = ctx.store.get(oid, default=DNE)
            entries[oid] = found
            if len(entries) > cache.capacity:
                entries.popitem(last=False)
            return found
        return fn

    def _v_RefOp(self, expr: RefOp) -> ValueFn:
        src = self.value(expr.source)
        type_name = expr.type_name
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if ctx.store is None:
                raise AlgebraError("REF needs an object store in the context")
            existing = ctx.store.find_ref(value)
            if existing is not None:
                return existing
            return ctx.store.insert(value, type_name=type_name)
        return fn

    def _v_MethodCall(self, expr: MethodCall) -> ValueFn:
        name = expr.name
        args = list(expr.args)
        receiver_fn = self.value(expr.receiver)
        input_receiver = receiver_fn is _input_fn
        compiler = self
        compiled_bodies: Dict[str, ValueFn] = {}
        def fn(v, ctx):
            if ctx.methods is None:
                raise MethodError("no method registry in the context")
            if input_receiver:
                receiver = v if v is not _UNBOUND else _input_fn(v, ctx)
            else:
                receiver = receiver_fn(v, ctx)
            if receiver is DNE or receiver is UNK:
                return receiver
            exact = exact_type_of(receiver, ctx)
            if exact is None:
                raise MethodError(
                    "cannot dispatch %r: receiver %r has no exact type"
                    % (name, receiver))
            ctx.tick("method_dispatches")
            body_fn = compiled_bodies.get(exact)
            if body_fn is None:
                # bind_params + compile once per exact type; the
                # interpreter re-instantiates the body per receiver.
                # Bodies compile at dispatch time (possibly after the
                # plan's span tree is closed), so never under tracing.
                method = ctx.methods.resolve(exact, name)
                with compiler._no_trace():
                    body_fn = compiler.value(method.instantiate(args))
                compiled_bodies[exact] = body_fn
            if isinstance(receiver, Ref):
                # deref_count is accounted by the Pipeline's cache-stat
                # flush (one cache access per deref), like compiled DEREF.
                receiver = cached_deref(ctx, receiver.oid)
                if receiver is DNE:
                    return DNE
            return body_fn(receiver, ctx)
        return fn

    # -- predicates ----------------------------------------------------

    def pred(self, p: Predicate) -> Callable[[Any, EvalContext], str]:
        with self._no_trace():
            return self._pred_fn(p)

    def _pred_fn(self, p: Predicate) -> Callable[[Any, EvalContext], str]:
        if isinstance(p, Atom):
            return self._pred_atom(p)
        if isinstance(p, And):
            lf = self.pred(p.left)
            rf = self.pred(p.right)
            def fn(v, ctx):
                a = lf(v, ctx)
                b = rf(v, ctx)
                if a == F or b == F:
                    return F
                if a == U or b == U:
                    return U
                return T
            return fn
        if isinstance(p, Not):
            inner = self.pred(p.inner)
            return lambda v, ctx: kleene_not(inner(v, ctx))
        if isinstance(p, TruePred):
            return lambda v, ctx: T
        test = p.test
        self.note("INTERP predicate %s" % type(p).__name__)
        return lambda v, ctx: test(v, ctx)

    def _pred_atom(self, atom: Atom) -> Callable[[Any, EvalContext], str]:
        lf = self.value(atom.left)
        rf = self.value(atom.right)
        # Constant operands are bound at compile time; σ predicates are
        # overwhelmingly `path op literal`, so this halves the closure
        # calls per tested occurrence.
        lconst = isinstance(atom.left, Const)
        lval = atom.left.value if lconst else None
        rconst = isinstance(atom.right, Const)
        rval = atom.right.value if rconst else None
        op = atom.op
        def fn(v, ctx):
            lhs = lval if lconst else lf(v, ctx)
            rhs = rval if rconst else rf(v, ctx)
            stats = ctx.stats
            stats["atom_evals"] = stats.get("atom_evals", 0) + 1
            if lhs is DNE or rhs is DNE:
                return F
            if lhs is UNK or rhs is UNK:
                return U
            if op == "=":
                return T if lhs == rhs else F
            if op == "!=":
                return F if lhs == rhs else T
            if op == "in":
                if isinstance(rhs, MultiSet):
                    return T if lhs in rhs else F
                if isinstance(rhs, Arr):
                    return T if any(lhs == item for item in rhs) else F
                raise AlgebraError(
                    "'in' needs a multiset or array right operand, "
                    "got %r" % (rhs,))
            return _compare_scalars(op, lhs, rhs)
        return fn

    def _v_Comp(self, expr: Comp) -> ValueFn:
        src = self.value(expr.source)
        pred_fn = self.pred(expr.pred)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            ctx.tick("comp_evals")
            verdict = pred_fn(value, ctx)
            if verdict == T:
                return value
            if verdict == U:
                return UNK
            return DNE
        return fn

    # -- multiset operators (streaming) ---------------------------------

    def _s_SetApply(self, expr: SetApply) -> StreamFn:
        match = match_hash_join(expr)
        if match is not None:
            return self._hash_join(match)
        # Collapse the chain of adjacent SET_APPLYs into one stage list,
        # innermost stage first, then generate one driver for the whole
        # chain.  σ bodies (COMP over INPUT) become filter stages.
        nodes = []
        node: Expr = expr
        while (isinstance(node, SetApply)
               and (node is expr or match_hash_join(node) is None)):
            nodes.append(node)
            node = node.source
        nodes.reverse()
        if self.access_paths != "off" and isinstance(node, Named) and nodes:
            probe = _match_probe(nodes[0])
            absorbed = 0
            if (probe is None and len(nodes) >= 2
                    and nodes[0].type_filter is None
                    and not isinstance(nodes[0].body, Comp)):
                # Map absorption: the translator lowers ``s.f = c`` over
                # a ref range as map(DEREF) then σ; the probe key is the
                # σ key composed with the map body (paper rule 15), so a
                # key index on ``DEREF(INPUT).f`` serves the lookup.
                # The map stage itself still runs over the probe output.
                inner = _match_probe(nodes[1])
                if inner is not None and inner.kind != "typed":
                    probe = _ProbePlan(
                        inner.kind,
                        key=substitute_input(inner.key, nodes[0].body),
                        eq_const=inner.eq_const, bounds=inner.bounds,
                        pred=inner.pred)
                    absorbed = 1
            if probe is not None and self._approve_probe(node.name, probe):
                return self._indexed_apply(node, probe, nodes, absorbed)
        src = self.stream(node, "SET_APPLY needs a multiset input, got %r",
                          with_value=True)
        codegen = _FusedCodegen(self)
        with self._no_trace():
            # Stage bodies run per occurrence inside this operator's
            # span; they never open spans of their own.
            gen = codegen.build(nodes)
        self.note("FUSED_APPLY[%d stage(s), %d inlined] over %s"
                  % (len(nodes), codegen.inlined, type(node).__name__))
        def fn(v, ctx):
            chunks = src(v, ctx)
            if isinstance(chunks, Null):
                return chunks
            return gen(chunks, ctx)
        return fn

    def _approve_probe(self, name: str, probe: _ProbePlan) -> bool:
        """Should a recognized probe shape actually be lowered?  Forced
        modes decide outright; in ``auto`` the cost model (when one is
        attached) prices probe vs. scan from catalog statistics and
        calibrated selectivities."""
        if self.access_paths == "force":
            return True
        model = self.cost_model
        if model is None or not hasattr(model, "choose_access_path"):
            return True
        choice = model.choose_access_path(name, kind=probe.kind,
                                          pred=probe.pred,
                                          types=probe.types)
        if choice == "scan":
            self.note("ACCESS_PATH[%s: cost model keeps the scan]" % name)
            return False
        return True

    def _indexed_apply(self, node: Named, probe: _ProbePlan,
                       nodes: List[SetApply],
                       absorbed: int = 0) -> StreamFn:
        """Lower a fused chain whose innermost stage is a recognized
        probe shape.  Compiles BOTH forms — the index probe feeding the
        rest of the chain, and the full fused scan — and picks per
        execution: the probe runs iff the context's catalog serves a
        live (or lazily rebuilt) index, so correctness never depends on
        catalog state at compile time."""
        name = node.name
        src = self.stream(node, "SET_APPLY needs a multiset input, got %r",
                          with_value=True)
        codegen = _FusedCodegen(self)
        with self._no_trace():
            scan_gen = codegen.build(nodes)
        if absorbed:
            # Keep the absorbed-through map stage; the σ above it (fully
            # answered by the probe) is dropped from the rest chain.
            rest = [nodes[0]] + list(nodes[2:])
        else:
            rest = list(nodes[1:])
            if probe.residual is not None:
                rest.insert(0, probe.residual)
        rest_gen = None
        if rest:
            rest_codegen = _FusedCodegen(self)
            with self._no_trace():
                rest_gen = rest_codegen.build(rest)
        self.note("FUSED_APPLY[%d stage(s), %d inlined] over %s"
                  % (len(nodes), codegen.inlined, type(node).__name__))
        path_desc = probe.describe(name)
        self.note("INDEX_PROBE candidate[%s] with scan fallback"
                  % path_desc)
        span = (self._span_stack[-1]
                if self.trace and not self._suppress else None)
        key = probe.key
        if probe.kind == "eq":
            const = probe.eq_const

            def open_probe(catalog, ctx):
                index = catalog.probe_keyed(name, key)
                if index is None:
                    return None
                return index.probe(const)
        elif probe.kind == "range":
            bounds = probe.bounds

            def open_probe(catalog, ctx):
                index = catalog.probe_ordered(name, key)
                if index is None:
                    return None
                return index.probe_range(**bounds)
        else:
            types = probe.types

            def open_probe(catalog, ctx):
                index = catalog.probe_typed(name)
                if index is None:
                    return None
                return iter(index.lookup(types).items())

        def fn(v, ctx):
            catalog = getattr(ctx, "indexes", None)
            if catalog is not None:
                chunks = open_probe(catalog, ctx)
                if chunks is not None:
                    ctx.tick("index_lookups")
                    if span is not None:
                        span.meta["access_path"] = path_desc
                    if rest_gen is not None:
                        return rest_gen(chunks, ctx)
                    return chunks
            if span is not None:
                span.meta["access_path"] = "scan[%s]" % name
            chunks = src(v, ctx)
            if isinstance(chunks, Null):
                return chunks
            return scan_gen(chunks, ctx)
        return fn

    def _hash_join(self, match: HashJoinMatch) -> StreamFn:
        lsrc = self.stream(match.left, "× needs two multisets")
        rsrc = self.stream(match.right, "× needs two multisets")
        with self._no_trace():
            lkey = self.value(match.left_key)
            rkey = self.value(match.right_key)
        self.note("HASH_JOIN[%s = %s]" % (match.pred.left.describe(),
                                          match.pred.right.describe()))
        left_name = (match.left.name
                     if isinstance(match.left, Named) else None)
        right_name = (match.right.name
                      if isinstance(match.right, Named) else None)
        inl_ok = (self.access_paths != "off"
                  and (left_name is not None or right_name is not None))
        if inl_ok:
            self.note("INL_JOIN candidate[%s] when a key index is live"
                      % " / ".join(n for n in (left_name, right_name)
                                   if n is not None))
        span = (self._span_stack[-1]
                if self.trace and not self._suppress else None)

        def gen(ls, rs, ctx):
            # Build on the right: key → [(element, count)].  dne keys
            # drop their element (the atom is F against everything);
            # unk keys make every pair with that element U.
            build: Dict[Any, list] = {}
            right_unk = 0
            right_live = 0  # occurrences whose key is not dne
            built = 0
            for b, nb in rs:
                built += nb
                k = rkey(b, ctx)
                if k is DNE:
                    continue
                right_live += nb
                if k is UNK:
                    right_unk += nb
                    continue
                bucket = build.get(k)
                if bucket is None:
                    bucket = build[k] = []
                bucket.append((b, nb))
            unk_total = 0
            probed = 0
            for a, na in ls:
                probed += na
                k = lkey(a, ctx)
                if k is DNE:
                    continue
                if k is UNK:
                    unk_total += na * right_live
                    continue
                if right_unk:
                    unk_total += na * right_unk
                bucket = build.get(k)
                if bucket is None:
                    continue
                for b, nb in bucket:
                    out = _flatten_pair(a, b)
                    if out is DNE:
                        continue
                    yield out, na * nb
            if unk_total:
                # U-verdict pairs: COMP yields unk, the flattener
                # propagates it, and the result multiset keeps it.
                yield UNK, unk_total
            ctx.tick("hash_join_build", built)
            ctx.tick("hash_join_probes", probed)

        def inl_gen(chunks, index, probe_key, indexed_right, ctx):
            # Index-nested-loop: the key index over one side replaces
            # the hash build; stream the other side and probe.  The unk
            # accounting reproduces the hash join's exactly — a pair is
            # U iff both keys are non-dne and at least one is unk — via
            # the index's live/unk occurrence totals.
            build_live = index.occurrences
            build_unk = index.unk_count
            unk_total = 0
            probed = 0
            for a, na in chunks:
                probed += na
                k = probe_key(a, ctx)
                if k is DNE:
                    continue
                if k is UNK:
                    unk_total += na * build_live
                    continue
                if build_unk:
                    unk_total += na * build_unk
                bucket = index.bucket(k)
                if not bucket:
                    continue
                for b, nb in bucket.items():
                    out = (_flatten_pair(a, b) if indexed_right
                           else _flatten_pair(b, a))
                    if out is DNE:
                        continue
                    yield out, na * nb
            if unk_total:
                yield UNK, unk_total
            ctx.tick("index_join_probes", probed)

        def fn(v, ctx):
            catalog = getattr(ctx, "indexes", None) if inl_ok else None
            if catalog is not None:
                left_idx = (catalog.probe_keyed(left_name, match.left_key,
                                                count=False)
                            if left_name is not None else None)
                right_idx = (catalog.probe_keyed(right_name, match.right_key,
                                                 count=False)
                             if right_name is not None else None)
                index = None
                if right_idx is not None and (
                        left_idx is None
                        or right_idx.occurrences >= left_idx.occurrences):
                    # Index the bigger side; stream (probe with) the
                    # other, like the hash join builds on the right.
                    index, probe_src, probe_key = right_idx, lsrc, lkey
                    indexed_right, indexed_name = True, right_name
                    catalog.record_probe("keyed", right_name,
                                         match.right_key)
                elif left_idx is not None:
                    index, probe_src, probe_key = left_idx, rsrc, rkey
                    indexed_right, indexed_name = False, left_name
                    catalog.record_probe("keyed", left_name, match.left_key)
                if index is not None:
                    chunks = probe_src(v, ctx)
                    if isinstance(chunks, Null):
                        return chunks
                    ctx.tick("index_lookups")
                    if span is not None:
                        span.meta["access_path"] = (
                            "index-nested-loop join[probe %s key index]"
                            % indexed_name)
                    return inl_gen(chunks, index, probe_key,
                                   indexed_right, ctx)
            ls = lsrc(v, ctx)
            rs = rsrc(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            if span is not None:
                span.meta["access_path"] = "hash join[build right]"
            return gen(ls, rs, ctx)
        return fn

    def _s_Grp(self, expr: Grp) -> StreamFn:
        with self._no_trace():
            key_fn = self.value(expr.by)
        src = self.stream(expr.source, "GRP needs a multiset input")

        def gen(chunks, ctx):
            groups: Dict[Any, Dict[Any, int]] = {}
            scanned = 0
            for element, count in chunks:
                scanned += count
                key = key_fn(element, ctx)
                if key is DNE:
                    continue
                bucket = groups.get(key)
                if bucket is None:
                    bucket = groups[key] = {}
                bucket[element] = bucket.get(element, 0) + count
            if scanned:
                ctx.tick("elements_scanned", scanned)
                ctx.tick("grp_elements", scanned)
            for bucket in groups.values():
                yield MultiSet._from_tally(bucket), 1

        def fn(v, ctx):
            chunks = src(v, ctx)
            if isinstance(chunks, Null):
                return chunks
            return gen(chunks, ctx)
        return fn

    def _s_DE(self, expr: DE) -> StreamFn:
        src = self.stream(expr.source, "DE needs a multiset input")

        if self.facts is not None and self.facts.is_duplicate_free(expr.source):
            # License: the input provably carries each occurrence once,
            # so DE is the identity — drop the hash table but keep the
            # exact counter ticks the hashing operator would produce.
            self.note("DE[pass-through: input proven duplicate-free]")

            def gen_passthrough(chunks, ctx):
                # Captured at start: a late close (see _FusedCodegen)
                # must flush into THIS statement's stats.
                stats = ctx.stats
                total = 0
                try:
                    for element, count in chunks:
                        total += count
                        yield element, 1
                finally:
                    stats["elements_scanned"] = (
                        stats.get("elements_scanned", 0) + total)
                    stats["de_elements"] = (
                        stats.get("de_elements", 0) + total)

            def fn_passthrough(v, ctx):
                chunks = src(v, ctx)
                if isinstance(chunks, Null):
                    return chunks
                return gen_passthrough(chunks, ctx)
            return fn_passthrough

        def gen(chunks, ctx):
            stats = ctx.stats
            seen = set()
            add = seen.add
            total = 0
            try:
                for element, count in chunks:
                    total += count
                    if element not in seen:
                        add(element)
                        yield element, 1
            finally:
                # The interpreter's DE ticks before looping, so it always
                # creates the counters; mirror that even for empty inputs.
                # Flush into the stats dict captured at generator start
                # (never a later statement's dict — see _FusedCodegen).
                stats["elements_scanned"] = (
                    stats.get("elements_scanned", 0) + total)
                stats["de_elements"] = (
                    stats.get("de_elements", 0) + total)

        def fn(v, ctx):
            chunks = src(v, ctx)
            if isinstance(chunks, Null):
                return chunks
            return gen(chunks, ctx)
        return fn

    def _s_AddUnion(self, expr: AddUnion) -> StreamFn:
        lf = self.stream(expr.left, "⊎ needs two multisets")
        rf = self.stream(expr.right, "⊎ needs two multisets")
        def fn(v, ctx):
            ls = lf(v, ctx)
            rs = rf(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            # Chunk streams are additive by construction: concatenation
            # IS ⊎, with zero hashing.
            return chain(ls, rs)
        return fn

    def _s_Diff(self, expr: Diff) -> StreamFn:
        lf = self.stream(expr.left, "− needs two multisets")
        rf = self.stream(expr.right, "− needs two multisets")

        def gen(ls, rs, ctx):
            right: Dict[Any, int] = {}
            for element, count in rs:
                right[element] = right.get(element, 0) + count
            # The left side streams through; `used` tracks how much of
            # the right-hand cardinality each element has absorbed so
            # repeated left chunks subtract correctly.
            used: Dict[Any, int] = {}
            for element, count in ls:
                held = right.get(element, 0)
                if held:
                    consumed = used.get(element, 0)
                    available = held - consumed
                    if available > 0:
                        take = available if available < count else count
                        used[element] = consumed + take
                        count -= take
                if count > 0:
                    yield element, count

        def fn(v, ctx):
            ls = lf(v, ctx)
            rs = rf(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            return gen(ls, rs, ctx)
        return fn

    def _s_Cross(self, expr: Cross) -> StreamFn:
        lf = self.stream(expr.left, "× needs two multisets")
        rf = self.stream(expr.right, "× needs two multisets")

        def gen(ls, rs, ctx):
            right: Dict[Any, int] = {}
            for element, count in rs:
                right[element] = right.get(element, 0) + count
            rtotal = sum(right.values())
            pairs = 0
            right_items = list(right.items())
            for a, na in ls:
                pairs += na * rtotal
                for b, nb in right_items:
                    yield Tup(field1=a, field2=b), na * nb
            ctx.tick("cross_pairs", pairs)

        def fn(v, ctx):
            ls = lf(v, ctx)
            rs = rf(v, ctx)
            if isinstance(ls, Null):
                return ls
            if isinstance(rs, Null):
                return rs
            return gen(ls, rs, ctx)
        return fn

    def _s_SetCollapse(self, expr: SetCollapse) -> StreamFn:
        src = self.stream(expr.source, "SET_COLLAPSE needs a multiset input")

        def gen(chunks, ctx):
            for element, count in chunks:
                if not isinstance(element, MultiSet):
                    raise TypeError(
                        "SET_COLLAPSE requires a multiset of multisets; "
                        "found %r" % (element,))
                for inner, m in element.items():
                    yield inner, count * m

        def fn(v, ctx):
            chunks = src(v, ctx)
            if isinstance(chunks, Null):
                return chunks
            return gen(chunks, ctx)
        return fn

    def _s_SetCreate(self, expr: SetCreate) -> StreamFn:
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            return iter(((value, 1),))
        return fn

    def _s_IndexedTypeScan(self, expr: IndexedTypeScan) -> StreamFn:
        name = expr.object_name
        types = expr.types
        use_index = self.access_paths != "off"
        span = (self._span_stack[-1]
                if self.trace and not self._suppress else None)

        def gen(collection, ctx):
            scanned = 0
            for element, count in collection.items():
                scanned += count
                if exact_type_of(element, ctx) in types:
                    yield element, count
            if scanned:
                ctx.tick("elements_scanned", scanned)

        def fn(v, ctx):
            catalog = getattr(ctx, "indexes", None) if use_index else None
            if catalog is not None:
                # probe_typed lazily rebuilds a stale partition snapshot
                # from its definition; falls through to the scan when no
                # typed index is defined for the name.
                index = catalog.probe_typed(name)
                if index is not None:
                    ctx.tick("index_lookups")
                    if span is not None:
                        span.meta["access_path"] = (
                            "index partition probe[%s: %s]"
                            % (name, "|".join(sorted(types))))
                    return iter(index.lookup(types).items())
            if span is not None:
                span.meta["access_path"] = "scan[%s]" % name
            collection = ctx.lookup(name)
            if not isinstance(collection, MultiSet):
                raise MethodError("IndexedTypeScan needs a multiset object")
            return gen(collection, ctx)
        return fn

    # Value forms of the streaming operators: materialize the chunks.

    def _v_SetApply(self, expr: SetApply) -> ValueFn:
        return self._materialize(self._s_SetApply(expr))

    def _v_Grp(self, expr: Grp) -> ValueFn:
        return self._materialize(self._s_Grp(expr))

    def _v_DE(self, expr: DE) -> ValueFn:
        return self._materialize(self._s_DE(expr))

    def _v_AddUnion(self, expr: AddUnion) -> ValueFn:
        return self._materialize(self._s_AddUnion(expr))

    def _v_Diff(self, expr: Diff) -> ValueFn:
        return self._materialize(self._s_Diff(expr))

    def _v_Cross(self, expr: Cross) -> ValueFn:
        return self._materialize(self._s_Cross(expr))

    def _v_SetCollapse(self, expr: SetCollapse) -> ValueFn:
        return self._materialize(self._s_SetCollapse(expr))

    def _v_IndexedTypeScan(self, expr: IndexedTypeScan) -> ValueFn:
        return self._materialize(self._s_IndexedTypeScan(expr))

    def _v_SetCreate(self, expr: SetCreate) -> ValueFn:
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            return MultiSet._from_tally({value: 1})
        return fn

    # -- array operators -----------------------------------------------

    def _v_ArrCreate(self, expr: ArrCreate) -> ValueFn:
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            return Arr([value])
        return fn

    def _v_ArrExtract(self, expr: ArrExtract) -> ValueFn:
        position = expr.position
        src = self.value(expr.source)
        if (self.sanitize is None and self.facts is not None
                and getattr(self.facts, "is_bounds_safe", None) is not None
                and self.facts.is_bounds_safe(expr)):
            # The analyzer proved the subscript in bounds for every
            # array the source can produce — skip the guard and index
            # the backing tuple directly.
            self.note("ARR_EXTRACT[%s] bounds check elided [static]"
                      % (position,))
            def elided(v, ctx):
                value = src(v, ctx)
                if value is DNE or value is UNK:
                    return value
                if not isinstance(value, Arr):
                    raise AlgebraError(
                        "ARR_EXTRACT needs an array, got %r" % (value,))
                where = len(value._items) if position == "last" \
                    else position
                return value._items[where - 1]
            return elided
        subscript_checks = None
        if self.sanitize is not None \
                and self.sanitize.is_bounds_safe(expr):
            subscript_checks = self.sanitize.runtime_checks(expr)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Arr):
                raise AlgebraError(
                    "ARR_EXTRACT needs an array, got %r" % (value,))
            where = len(value) if position == "last" else position
            if subscript_checks is not None:
                subscript_checks.check_subscript(where, len(value))
            if not 1 <= where <= len(value):
                return DNE
            return value.extract(where)
        return fn

    def _v_ArrApply(self, expr: ArrApply) -> ValueFn:
        with self._no_trace():
            body_fn = self.value(expr.body)
        src = self.value(expr.source)
        type_filter = expr.type_filter
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Arr):
                raise AlgebraError(
                    "ARR_APPLY needs an array, got %r" % (value,))
            out = []
            scanned = 0
            processed = 0
            for element in value:
                scanned += 1
                if type_filter is not None:
                    if exact_type_of(element, ctx) not in type_filter:
                        continue
                processed += 1
                result = body_fn(element, ctx)
                if result is DNE:
                    continue
                out.append(result)
            if scanned:
                ctx.tick("elements_scanned", scanned)
            if processed:
                ctx.tick("arr_apply_elements", processed)
            return Arr(out)
        return fn

    def _v_SubArr(self, expr: SubArr) -> ValueFn:
        lower, upper = expr.lower, expr.upper
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Arr):
                raise AlgebraError("SUBARR needs an array, got %r" % (value,))
            return value.subarr(lower, upper)
        return fn

    def _v_ArrCat(self, expr: ArrCat) -> ValueFn:
        lf = self.value(expr.left)
        rf = self.value(expr.right)
        def fn(v, ctx):
            lhs = lf(v, ctx)
            rhs = rf(v, ctx)
            if lhs is DNE or lhs is UNK:
                return lhs
            if rhs is DNE or rhs is UNK:
                return rhs
            if not isinstance(lhs, Arr) or not isinstance(rhs, Arr):
                raise AlgebraError("ARR_CAT needs two arrays")
            return lhs.concat(rhs)
        return fn

    def _v_ArrCollapse(self, expr: ArrCollapse) -> ValueFn:
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Arr):
                raise AlgebraError("ARR_COLLAPSE needs an array")
            out = []
            for element in value:
                if not isinstance(element, Arr):
                    raise AlgebraError(
                        "ARR_COLLAPSE needs an array of arrays; found %r"
                        % (element,))
                out.extend(element)
            return Arr(out)
        return fn

    def _v_ArrDiff(self, expr: ArrDiff) -> ValueFn:
        lf = self.value(expr.left)
        rf = self.value(expr.right)
        def fn(v, ctx):
            lhs = lf(v, ctx)
            rhs = rf(v, ctx)
            if lhs is DNE or lhs is UNK:
                return lhs
            if rhs is DNE or rhs is UNK:
                return rhs
            if not isinstance(lhs, Arr) or not isinstance(rhs, Arr):
                raise AlgebraError("ARR_DIFF needs two arrays")
            to_remove: Dict[Any, int] = {}
            for element in rhs:
                to_remove[element] = to_remove.get(element, 0) + 1
            out = []
            for element in lhs:
                if to_remove.get(element, 0) > 0:
                    to_remove[element] -= 1
                else:
                    out.append(element)
            return Arr(out)
        return fn

    def _v_ArrDE(self, expr: ArrDE) -> ValueFn:
        src = self.value(expr.source)
        def fn(v, ctx):
            value = src(v, ctx)
            if value is DNE or value is UNK:
                return value
            if not isinstance(value, Arr):
                raise AlgebraError("ARR_DE needs an array")
            ctx.tick("de_elements", len(value))
            seen = set()
            out = []
            for element in value:
                if element not in seen:
                    seen.add(element)
                    out.append(element)
            return Arr(out)
        return fn

    def _v_ArrCross(self, expr: ArrCross) -> ValueFn:
        lf = self.value(expr.left)
        rf = self.value(expr.right)
        def fn(v, ctx):
            lhs = lf(v, ctx)
            rhs = rf(v, ctx)
            if lhs is DNE or lhs is UNK:
                return lhs
            if rhs is DNE or rhs is UNK:
                return rhs
            if not isinstance(lhs, Arr) or not isinstance(rhs, Arr):
                raise AlgebraError("ARR_CROSS needs two arrays")
            ctx.tick("cross_pairs", len(lhs) * len(rhs))
            return Arr(Tup(field1=a, field2=b) for a in lhs for b in rhs)
        return fn


# ---------------------------------------------------------------------------
# Runtime span instrumentation (traced builds only)
# ---------------------------------------------------------------------------

def _traced_value(fn: ValueFn, span: Span) -> ValueFn:
    """Wrap a compiled value form: time each call, count results.

    A multiset result contributes its full cardinality to ``card_out``;
    a ``dne`` result counts as a discard (``dne_out``), matching the
    null-discipline bookkeeping the issue calls null-discard counts.
    """
    def traced(v: Any, ctx: EvalContext) -> Any:
        started = perf_counter()
        try:
            out = fn(v, ctx)
        finally:
            span.calls += 1
            span.wall += perf_counter() - started
        if out is DNE:
            span.dne_out += 1
        else:
            span.rows_out += 1
            span.card_out += len(out) if isinstance(out, MultiSet) else 1
        return out
    return traced


def _traced_chunks(chunks: Any, span: Span) -> Any:
    """Count and time a chunk stream as it is pulled.

    Only the producer's own ``next()`` time lands on the span (pulls
    nest, so a parent's wall is naturally inclusive of its children),
    and abandonment mid-stream simply stops counting — no ``finally``,
    so nothing fires at late garbage collection.
    """
    chunks = iter(chunks)
    while True:
        started = perf_counter()
        try:
            item = next(chunks)
        except StopIteration:
            span.wall += perf_counter() - started
            return
        span.wall += perf_counter() - started
        span.rows_out += 1
        span.card_out += item[1]
        yield item


def _traced_stream(fn: StreamFn, span: Span) -> StreamFn:
    def traced(v: Any, ctx: EvalContext) -> Any:
        started = perf_counter()
        try:
            chunks = fn(v, ctx)
        finally:
            span.calls += 1
            span.wall += perf_counter() - started
        if isinstance(chunks, Null):
            if chunks is DNE:
                span.dne_out += 1
            return chunks
        return _traced_chunks(chunks, span)
    return traced


# ---------------------------------------------------------------------------
# Sanitizer instrumentation (sanitize builds only)
# ---------------------------------------------------------------------------

def _sanitized_value(fn: ValueFn, checks: Any) -> ValueFn:
    """Wrap a compiled value form: assert the analyzer's facts about
    this node against every value it actually produces."""
    def sanitized(v: Any, ctx: EvalContext) -> Any:
        out = fn(v, ctx)
        checks.check_value(out)
        return out
    return sanitized


def _sanitized_stream(fn: StreamFn, checks: Any) -> StreamFn:
    """Wrap a compiled stream form: count the chunk stream and assert
    the proven cardinality interval (and duplicate-freedom claim) once
    the stream is exhausted."""
    def sanitized(v: Any, ctx: EvalContext) -> Any:
        chunks = fn(v, ctx)
        if isinstance(chunks, Null):
            checks.check_null_stream(chunks)
            return chunks
        return checks.watch_chunks(chunks)
    return sanitized


# ---------------------------------------------------------------------------
# Pipelines
# ---------------------------------------------------------------------------

class Pipeline:
    """A compiled, reusable execution plan for one expression tree.

    ``execute(ctx)`` runs the plan against an evaluation context; the
    pipeline itself is stateless apart from per-exact-type method-body
    memoization, so it can be executed many times (the benchmarks
    compile once and execute per iteration, like a prepared statement).
    """

    def __init__(self, expr: Expr, run: ValueFn, notes: List[str],
                 trace_root: Optional[Span] = None):
        self.expr = expr
        self._run = run
        self.notes = tuple(notes)
        #: Root of the compile-time span tree (kind ``plan``) for traced
        #: builds, None otherwise.  Spans are bumped in place by runs,
        #: so a traced pipeline is per-statement, not a reusable
        #: prepared plan.
        self.trace_root = trace_root

    def execute(self, ctx: EvalContext, input_value: Any = _UNBOUND) -> Any:
        # Captured up front so the flush in ``finally`` reports into the
        # stats dict this run started under.
        stats = ctx.stats
        cache = ctx.deref_cache
        if cache is not None and ctx.store is not None:
            # The cache is keyed by the store's mutation version: if an
            # update/delete landed since the entries were read (and no
            # begin_query() intervened), they are stale — drop them.
            cache.validate(getattr(ctx.store, "version", None))
        hits0, misses0 = (cache.hits, cache.misses) if cache is not None \
            else (0, 0)
        try:
            return self._run(input_value, ctx)
        finally:
            # Compiled derefs bump plain integers on the cache; flush
            # the per-run deltas into the stats dict here (once), under
            # the counter names the interpreter and the benchmarks use.
            cache = ctx.deref_cache
            if cache is not None:
                hits = cache.hits - hits0
                misses = cache.misses - misses0
                if hits or misses:
                    stats["deref_count"] = (
                        stats.get("deref_count", 0) + hits + misses)
                if hits:
                    stats["deref_cache_hit"] = (
                        stats.get("deref_cache_hit", 0) + hits)
                if misses:
                    stats["deref_cache_miss"] = (
                        stats.get("deref_cache_miss", 0) + misses)

    def explain(self) -> str:
        """The physical choices the compiler made (fusion, hash joins)."""
        header = "compiled plan for %s" % self.expr.describe()
        return "\n".join([header] + ["  %s" % note for note in self.notes])

    def __repr__(self) -> str:
        return "<Pipeline %s (%d note(s))>" % (type(self.expr).__name__,
                                               len(self.notes))


def compile_plan(expr: Expr, ctx: "EvalContext | None" = None,
                 facts: Any = None, trace: bool = False,
                 cost_model: Any = None, access_paths: str = "auto",
                 sanitize: Any = None) -> Pipeline:
    """Lower *expr* into a streaming :class:`Pipeline`.

    *ctx* is accepted for signature symmetry with ``evaluate``;
    compilation itself is structural plus whatever *facts* license —
    e.g. verified duplicate-freedom turns DE into a pass-through.

    ``access_paths`` controls index-probe lowering: ``"auto"`` lowers
    recognized σ/typed/join shapes over named extents to catalog probes
    (with a per-execution scan fallback), letting *cost_model* veto
    unselective probes when one is attached; ``"force"`` always lowers;
    ``"off"`` compiles pure scans — the differential suites run force
    vs. off and demand bit-identical results.

    With *trace* on, the pipeline carries a span tree mirroring the
    physical plan in ``trace_root``, every run records per-operator
    wall time and output cardinalities into it, and each probe-capable
    operator stamps the access path it actually took into its span's
    ``meta`` (rendered by EXPLAIN ANALYZE).

    *sanitize* takes a ``PlanAnalysis`` (``repro.core.analysis.absint``)
    and flips the engine into sanitizer mode: instead of consuming the
    analyzer's licenses, every compiled closure asserts them at runtime
    — emitted cardinalities inside the proven interval, no subscript
    outside a proven bound, no duplicate where duplicate-freedom was
    claimed.  A violation raises ``SanitizerError`` and bumps the
    ``repro_sanitizer_violations_total`` counter.
    """
    compiler = PlanCompiler(facts=facts, trace=trace, cost_model=cost_model,
                            access_paths=access_paths, sanitize=sanitize)
    run = compiler.value(expr)
    return Pipeline(expr, run, compiler.notes,
                    trace_root=compiler.trace_root)
