"""The compiled execution engine: streaming physical plans for EXCESS.

Public surface:

* :func:`compile_plan` — lower an algebra tree into a reusable
  :class:`Pipeline` of fused, streaming physical operators.
* :func:`compile_batch_plan` — the same physical algebra exchanging
  columnar :class:`Batch` objects between operators (tight-loop fused
  chains, per-OID suffix memoization, grouped method dispatch).
* :func:`partition_plan` — wrap a batch pipeline in OID-pool R(n)
  partitioning with forked workers and a deterministic merge.
* :class:`Pipeline` — the compiled plan; ``execute(ctx)`` runs it,
  ``explain()`` shows the physical choices made.
* :class:`DerefCache` — the per-query OID → value LRU consulted by
  compiled DEREF (lives on ``EvalContext.deref_cache``).
* :func:`match_hash_join` / :class:`HashJoinMatch` — recognition of the
  rel_join (SET_APPLY ∘ σ ∘ ×) shape with an equality atom; shared with
  the optimizer's cost model so ranking matches what actually runs.

Select the engine at any entry point with ``mode="compiled"`` or
``mode="batched"`` — see :func:`repro.core.expr.evaluate`,
``excess.session.Session``, and the CLI's ``.engine`` meta-command.
"""

from .batch import (DEFAULT_BATCH_SIZE, Batch, BatchPlanCompiler,
                    compile_batch_plan)
from .cache import DEFAULT_CAPACITY, DerefCache
from .compiler import (HashJoinMatch, Pipeline, PlanCompiler, cached_deref,
                       compile_plan, match_hash_join)
from .partition import PartitionPlan, partition_plan

__all__ = [
    "Batch",
    "BatchPlanCompiler",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CAPACITY",
    "DerefCache",
    "HashJoinMatch",
    "PartitionPlan",
    "Pipeline",
    "PlanCompiler",
    "cached_deref",
    "compile_batch_plan",
    "compile_plan",
    "match_hash_join",
    "partition_plan",
]
