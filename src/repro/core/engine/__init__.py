"""The compiled execution engine: streaming physical plans for EXCESS.

Public surface:

* :func:`compile_plan` — lower an algebra tree into a reusable
  :class:`Pipeline` of fused, streaming physical operators.
* :class:`Pipeline` — the compiled plan; ``execute(ctx)`` runs it,
  ``explain()`` shows the physical choices made.
* :class:`DerefCache` — the per-query OID → value LRU consulted by
  compiled DEREF (lives on ``EvalContext.deref_cache``).
* :func:`match_hash_join` / :class:`HashJoinMatch` — recognition of the
  rel_join (SET_APPLY ∘ σ ∘ ×) shape with an equality atom; shared with
  the optimizer's cost model so ranking matches what actually runs.

Select the engine at any entry point with ``mode="compiled"`` — see
:func:`repro.core.expr.evaluate`, ``excess.session.Session``, and the
CLI's ``.engine`` meta-command.
"""

from .cache import DEFAULT_CAPACITY, DerefCache
from .compiler import (HashJoinMatch, Pipeline, PlanCompiler, cached_deref,
                       compile_plan, match_hash_join)

__all__ = [
    "DEFAULT_CAPACITY",
    "DerefCache",
    "HashJoinMatch",
    "Pipeline",
    "PlanCompiler",
    "cached_deref",
    "compile_plan",
    "match_hash_join",
]
