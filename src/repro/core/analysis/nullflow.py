"""Null-flow analysis: may ``unk``/``dne`` reach a subtree's result?

Section 3 of the paper fixes how the two nulls move: ``unk`` ("value
unknown") propagates through expressions and makes COMP predicates
three-valued, while ``dne`` ("does not exist") is *discarded by
multiset construction* — a SET_APPLY body returning dne contributes
nothing, and a COMP whose predicate is false-or-unknown yields dne for
that occurrence.  This pass computes, per subtree, a conservative
*may* description of where the nulls can be, so the linter can flag
predicates that silently discard occurrences (code L104).

The lattice element is :class:`NullInfo`: a may-set for the value
itself plus recursive element/field structure for collections and
tuples.  Unknown positions default to the empty may-set — the analysis
is optimistic, so every reported hazard is backed by an actual null in
the data (a stored occurrence, a dne-returning builtin, a DEREF) and
not by ignorance.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional

from ..expr import Expr
from ..values import Arr, MultiSet, Null, Ref, Tup

UNK_FLAG = "unk"
DNE_FLAG = "dne"

_EMPTY: FrozenSet[str] = frozenset()


class NullInfo:
    """May-information for one value position."""

    __slots__ = ("value", "element", "fields")

    def __init__(self, value: FrozenSet[str] = _EMPTY,
                 element: Optional["NullInfo"] = None,
                 fields: Optional[Dict[str, "NullInfo"]] = None):
        self.value = frozenset(value)
        self.element = element
        self.fields = fields

    def may_unk(self) -> bool:
        return UNK_FLAG in self.value

    def may_dne(self) -> bool:
        return DNE_FLAG in self.value

    def join(self, other: "NullInfo") -> "NullInfo":
        element = self.element
        if other.element is not None:
            element = (other.element if element is None
                       else element.join(other.element))
        fields = None
        if self.fields is not None or other.fields is not None:
            fields = dict(self.fields or {})
            for name, info in (other.fields or {}).items():
                fields[name] = (fields[name].join(info) if name in fields
                                else info)
        return NullInfo(self.value | other.value, element, fields)

    def with_value(self, extra: FrozenSet[str]) -> "NullInfo":
        return NullInfo(self.value | extra, self.element, self.fields)

    def without_value(self, dropped: FrozenSet[str]) -> "NullInfo":
        return NullInfo(self.value - dropped, self.element, self.fields)

    def field(self, name: str) -> "NullInfo":
        if self.fields is None:
            return EMPTY_INFO
        return self.fields.get(name, NullInfo(frozenset([DNE_FLAG])))

    def __repr__(self) -> str:
        return "NullInfo(%s)" % sorted(self.value)


EMPTY_INFO = NullInfo()


def info_of_value(value: Any) -> NullInfo:
    """The exact null content of a stored runtime value."""
    if isinstance(value, Null):
        return NullInfo(frozenset([value.kind]))  # kind is "unk" or "dne"
    if isinstance(value, Tup):
        return NullInfo(fields={name: info_of_value(v)
                                for name, v in value.fields})
    if isinstance(value, MultiSet):
        element = None
        for occurrence in value.elements():
            info = info_of_value(occurrence)
            element = info if element is None else element.join(info)
        return NullInfo(element=element or EMPTY_INFO)
    if isinstance(value, Arr):
        element = None
        for occurrence in value:
            info = info_of_value(occurrence)
            element = info if element is None else element.join(info)
        return NullInfo(element=element or EMPTY_INFO)
    if isinstance(value, Ref):
        return EMPTY_INFO
    return EMPTY_INFO


class NullFlow:
    """Computes :class:`NullInfo` for algebra subtrees.

    ``observer(comp_expr, operand_expr, operand_info)`` — when given —
    is invoked for every COMP predicate operand as it is analysed, so a
    caller (the linter) can collect dne-discard hazards without
    re-walking the tree.
    """

    def __init__(self, named_infos: Optional[Dict[str, NullInfo]] = None,
                 dne_functions: Optional[FrozenSet[str]] = None,
                 observer: Optional[Callable] = None):
        self.named = dict(named_infos or {})
        self.dne_functions = frozenset(dne_functions or ())
        self.observer = observer

    def check(self, expr: Expr,
              input_info: NullInfo = EMPTY_INFO) -> NullInfo:
        method = getattr(self, "_nf_%s" % type(expr).__name__, None)
        if method is None:
            return EMPTY_INFO  # optimistic: unknown nodes add no nulls
        return method(expr, input_info)

    # -- leaves ---------------------------------------------------------

    def _nf_Input(self, expr, input_info):
        return input_info

    def _nf_Named(self, expr, input_info):
        return self.named.get(expr.name, EMPTY_INFO)

    def _nf_Const(self, expr, input_info):
        return info_of_value(expr.value)

    def _nf_Func(self, expr, input_info):
        flags = frozenset()
        for arg in expr.args:
            flags |= self.check(arg, input_info).value
        if expr.name in self.dne_functions:
            flags |= frozenset([DNE_FLAG])
        return NullInfo(flags)

    # -- multiset operators ---------------------------------------------

    def _nf_SetApply(self, expr, input_info):
        source = self.check(expr.source, input_info)
        body = self.check(expr.body, source.element or EMPTY_INFO)
        # dne results are discarded by multiset construction (§3).
        return NullInfo(element=body.without_value(
            frozenset([DNE_FLAG])))

    def _nf_Grp(self, expr, input_info):
        source = self.check(expr.source, input_info)
        self.check(expr.by, source.element or EMPTY_INFO)
        return NullInfo(element=NullInfo(element=source.element))

    def _nf_DE(self, expr, input_info):
        return self.check(expr.source, input_info)

    def _nf_SetCreate(self, expr, input_info):
        inner = self.check(expr.source, input_info)
        return NullInfo(element=inner.without_value(
            frozenset([DNE_FLAG])))

    def _nf_SetCollapse(self, expr, input_info):
        source = self.check(expr.source, input_info)
        inner = source.element or EMPTY_INFO
        return NullInfo(element=inner.element)

    def _nf_AddUnion(self, expr, input_info):
        return self.check(expr.left, input_info).join(
            self.check(expr.right, input_info))

    def _nf_Diff(self, expr, input_info):
        self.check(expr.right, input_info)
        return self.check(expr.left, input_info)

    def _nf_Cross(self, expr, input_info):
        left = self.check(expr.left, input_info)
        right = self.check(expr.right, input_info)
        pair = NullInfo(fields={"field1": left.element or EMPTY_INFO,
                                "field2": right.element or EMPTY_INFO})
        return NullInfo(element=pair)

    # -- tuple operators -------------------------------------------------

    def _nf_Pi(self, expr, input_info):
        source = self.check(expr.source, input_info)
        if source.fields is None:
            return EMPTY_INFO
        return NullInfo(fields={name: source.field(name)
                                for name in expr.names
                                if name in source.fields})

    def _nf_TupExtract(self, expr, input_info):
        source = self.check(expr.source, input_info)
        if source.fields is None:
            return EMPTY_INFO
        return source.field(expr.field)

    def _nf_TupCreate(self, expr, input_info):
        return NullInfo(fields={expr.field: self.check(expr.source,
                                                       input_info)})

    def _nf_TupCat(self, expr, input_info):
        left = self.check(expr.left, input_info)
        right = self.check(expr.right, input_info)
        fields = dict(left.fields or {})
        fields.update(right.fields or {})
        return NullInfo(fields=fields)

    # -- references, predicates ------------------------------------------

    def _nf_Deref(self, expr, input_info):
        self.check(expr.source, input_info)
        # A dangling ref dereferences to dne; the object's own nulls are
        # unknown to this pass (optimistically empty).
        return NullInfo(frozenset([DNE_FLAG]))

    def _nf_RefOp(self, expr, input_info):
        self.check(expr.source, input_info)
        return EMPTY_INFO

    def _nf_Comp(self, expr, input_info):
        source = self.check(expr.source, input_info)
        may_unk = False
        for operand in expr.pred.deep_exprs():
            operand_info = self.check(operand, source)
            if self.observer is not None:
                self.observer(expr, operand, operand_info)
            if operand_info.may_unk():
                may_unk = True
        flags = frozenset([DNE_FLAG])  # pred false/unknown → dne
        if may_unk:
            flags |= frozenset([UNK_FLAG])
        return source.with_value(flags)

    # -- arrays -----------------------------------------------------------

    def _nf_ArrApply(self, expr, input_info):
        source = self.check(expr.source, input_info)
        body = self.check(expr.body, source.element or EMPTY_INFO)
        # Array construction keeps dne occurrences (positions matter).
        return NullInfo(element=body)

    def _nf_ArrCreate(self, expr, input_info):
        return NullInfo(element=self.check(expr.source, input_info))

    def _nf_ArrExtract(self, expr, input_info):
        source = self.check(expr.source, input_info)
        # Out-of-bounds extraction yields dne.
        return (source.element or EMPTY_INFO).with_value(
            frozenset([DNE_FLAG]))

    def _nf_SubArr(self, expr, input_info):
        return self.check(expr.source, input_info)

    def _nf_ArrCat(self, expr, input_info):
        return self.check(expr.left, input_info).join(
            self.check(expr.right, input_info))

    def _nf_ArrDE(self, expr, input_info):
        return self.check(expr.source, input_info)

    def _nf_ArrCollapse(self, expr, input_info):
        source = self.check(expr.source, input_info)
        inner = source.element or EMPTY_INFO
        return NullInfo(element=inner.element)


def nullflow_for_database(db, observer: Optional[Callable] = None
                          ) -> NullFlow:
    """A NullFlow seeded with the exact null content of every named
    object and the dne-returning builtins (min/max/avg on ∅)."""
    named = {name: info_of_value(db.get(name)) for name in db.names()}
    try:
        from ...excess.builtins import MAY_RETURN_DNE
        dne_functions = frozenset(MAY_RETURN_DNE)
    except ImportError:  # pragma: no cover - excess layer always ships
        dne_functions = frozenset(["min", "max", "avg"])
    return NullFlow(named, dne_functions, observer)
