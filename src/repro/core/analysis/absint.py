"""Abstract interpretation over whole algebra plans (bottom-up).

The interpreter walks a plan once and computes, per sub-expression, a
sound over-approximation of every value it can produce at run time,
over three coupled domains:

* **cardinality intervals** ``[lo..hi]`` for multiset producers, seeded
  exactly from the stored extents behind ``Named`` leaves and propagated
  through every operator (SET_APPLY, GRP, DE, ⊎, −, ×, SET_COLLAPSE, …);
* **array-length intervals** for the ARR_* operators, strong enough to
  prove a subscript in-bounds (the compiled engine may then elide its
  bounds check) or statically out-of-bounds (the result is always
  ``dne`` — a linter error);
* **value-range / constantness intervals** for numeric and string tuple
  fields, strong enough to prove a σ predicate unsatisfiable (the
  subplan is statically empty) or tautological (the filter is the
  identity).

Every fact is *conservative*: ``unk``/``dne`` possibilities, unknown
sorts, opaque functions, and method calls all widen to ⊤.  Facts that
license the engine to *skip work* (short-circuit a statically-empty
subplan, elide a bounds check) additionally require the proven subtree
to be **total** — incapable of raising — so an analysis-on run keeps
failure behaviour bit-identical to analysis-off.

The derived facts flow three ways: :meth:`PlanAnalysis.extend_facts`
turns them into :class:`~repro.core.analysis.facts.PlanFacts` licenses
for the compiled engine and the optimizer, :attr:`PlanAnalysis.findings`
feeds the linter's L200-series codes, and
:meth:`PlanAnalysis.describe_bounds` renders static ``[lo..hi]`` bounds
inside EXPLAIN / EXPLAIN ANALYZE.

A *sanitizer* mode (see :class:`NodeChecks` and
``compile_plan(..., sanitize=analysis)``) turns every emitted fact into
a runtime assertion instead of a license, so the analyzer is itself
adversarially tested by the differential suites.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..expr import Const, Expr, Input, Named
from ..methods import IndexedTypeScan
from ..operators.arrays import (ArrApply, ArrCat, ArrCollapse, ArrCreate,
                                ArrCross, ArrDE, ArrDiff, ArrExtract, SubArr)
from ..operators.multiset import (DE, AddUnion, Cross, Diff, Grp, SetApply,
                                  SetCollapse, SetCreate)
from ..operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..predicates import (And, Atom, Comp, F, Not, Predicate, T, TruePred, U,
                          kleene_not)
from ..values import DNE, UNK, Arr, MultiSet, Ref, Tup

INF = float("inf")

#: Elements scanned per stored collection before the element abstraction
#: widens to ⊤ (cardinalities stay exact — ``len`` is O(1)).
SCAN_CAP = 4096
#: Nesting depth scanned when abstracting stored values.
SCAN_DEPTH = 3

_NO_CONST = object()


class SanitizerError(AssertionError):
    """A proven static fact was violated at run time.

    Deliberately *not* an :class:`~repro.core.expr.AlgebraError`: a
    sanitizer failure is a bug in the analyzer (or a stale fact), never
    a property of the query, and must not be confused with a plan
    error by the differential suites.
    """


class Interval:
    """A closed interval ``[lo, hi]`` over non-negative counts (hi may
    be ``inf``)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        self.lo = max(0.0, float(lo))
        self.hi = float(hi)

    @classmethod
    def exact(cls, n: float) -> "Interval":
        return cls(n, n)

    @classmethod
    def top(cls) -> "Interval":
        return cls(0.0, INF)

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def mul(self, other: "Interval") -> "Interval":
        # 0 · ∞ = 0: an empty side makes the product empty regardless.
        def m(a: float, b: float) -> float:
            if a == 0.0 or b == 0.0:
                return 0.0
            return a * b
        return Interval(m(self.lo, other.lo), m(self.hi, other.hi))

    def minus_floor(self, other: "Interval") -> "Interval":
        """``[max(0, lo−other.hi), hi]`` — multiset/array difference."""
        lo = 0.0 if other.hi == INF else max(0.0, self.lo - other.hi)
        return Interval(lo, self.hi)

    def contains(self, n: float) -> bool:
        return self.lo <= n <= self.hi

    def is_trivial(self) -> bool:
        return self.lo == 0.0 and self.hi == INF

    def describe(self) -> str:
        def fmt(v: float) -> str:
            return "∞" if v == INF else "%d" % v
        return "[%s..%s]" % (fmt(self.lo), fmt(self.hi))

    def __repr__(self) -> str:
        return "Interval%s" % self.describe()

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Interval)
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))


class AbsValue:
    """Abstract description of one runtime value (or of the element
    population of a collection).

    ``maybe_value`` / ``may_unk`` / ``may_dne`` partition the
    possibilities: a proper (non-null) value, the ``unk`` null, the
    ``dne`` null.  When a proper value is possible, ``sorts`` names its
    possible shapes (``None`` = unknown): ``set``, ``arr``, ``tup``,
    ``ref``, ``num``, ``str``, ``other``.  Shape-specific refinements
    (``card``, ``length``, ``element``, ``fields``, ``num``) each
    describe only the matching branch.

    ``total`` is a property of the *expression evaluation* that
    produced this abstraction: True means it provably cannot raise.
    """

    __slots__ = ("maybe_value", "may_unk", "may_dne", "sorts", "card",
                 "length", "element", "fields", "always", "closed",
                 "num", "const", "total")

    def __init__(self, maybe_value: bool = True, may_unk: bool = True,
                 may_dne: bool = True,
                 sorts: Optional[FrozenSet[str]] = None,
                 card: Optional[Interval] = None,
                 length: Optional[Interval] = None,
                 element: Optional["AbsValue"] = None,
                 fields: Optional[Dict[str, "AbsValue"]] = None,
                 always: FrozenSet[str] = frozenset(),
                 closed: bool = False,
                 num: Optional[Tuple[float, float]] = None,
                 const: Any = _NO_CONST,
                 total: bool = False):
        self.maybe_value = maybe_value
        self.may_unk = may_unk
        self.may_dne = may_dne
        self.sorts = sorts
        self.card = card if card is not None else Interval.top()
        self.length = length if length is not None else Interval.top()
        self.element = element
        self.fields = fields
        self.always = always
        self.closed = closed
        self.num = num
        self.const = const
        self.total = total

    # -- constructors --------------------------------------------------

    @classmethod
    def top(cls, total: bool = False) -> "AbsValue":
        return cls(total=total)

    @classmethod
    def null(cls, which: Any, total: bool = True) -> "AbsValue":
        return cls(maybe_value=False, may_unk=which is UNK,
                   may_dne=which is DNE, sorts=frozenset(), total=total)

    # -- predicates ----------------------------------------------------

    def definitely(self, sort: str) -> bool:
        """When non-null, the value is certainly of *sort*."""
        return self.sorts is not None and self.sorts <= {sort}

    def never_null(self) -> bool:
        return not self.may_unk and not self.may_dne

    def is_statically_empty(self, sort: str) -> bool:
        """Provably the empty multiset / array (never null, never any
        other shape)."""
        if not (self.maybe_value and self.never_null()
                and self.definitely(sort)):
            return False
        bound = self.card if sort == "set" else self.length
        return bound.hi == 0.0

    # -- derivation helpers --------------------------------------------

    def but(self, **changes: Any) -> "AbsValue":
        out = AbsValue.__new__(AbsValue)
        for slot in AbsValue.__slots__:
            setattr(out, slot, changes.get(slot, getattr(self, slot)))
        return out

    def with_nulls_of(self, src: "AbsValue") -> "AbsValue":
        """Null passthrough: most operators forward a null input."""
        return self.but(may_unk=self.may_unk or src.may_unk,
                        may_dne=self.may_dne or src.may_dne,
                        total=self.total and src.total)

    def strip_nulls(self) -> "AbsValue":
        return self.but(may_unk=False, may_dne=False)

    def join(self, other: "AbsValue") -> "AbsValue":
        sorts = (None if self.sorts is None or other.sorts is None
                 else self.sorts | other.sorts)
        if self.num is not None and other.num is not None:
            num: Optional[Tuple[float, float]] = (
                min(self.num[0], other.num[0]),
                max(self.num[1], other.num[1]))
        elif not self.maybe_value:
            num = other.num
        elif not other.maybe_value:
            num = self.num
        else:
            num = None
        if self.fields is not None and other.fields is not None:
            fields: Optional[Dict[str, AbsValue]] = {}
            for name in set(self.fields) | set(other.fields):
                a, b = self.fields.get(name), other.fields.get(name)
                if a is not None and b is not None:
                    fields[name] = a.join(b)
                else:
                    # Present on one side only: extraction may raise or
                    # see anything — keep no refinement for it.
                    fields[name] = AbsValue.top(total=True)
        elif not self.maybe_value:
            fields = other.fields
        elif not other.maybe_value:
            fields = self.fields
        else:
            fields = None
        if not self.maybe_value:
            always, closed = other.always, other.closed
            element = other.element
            card, length = other.card, other.length
        elif not other.maybe_value:
            always, closed = self.always, self.closed
            element = self.element
            card, length = self.card, self.length
        else:
            always = self.always & other.always
            closed = self.closed and other.closed
            element = (self.element.join(other.element)
                       if self.element is not None
                       and other.element is not None else None)
            card = self.card.join(other.card)
            length = self.length.join(other.length)
        if (self.const is not _NO_CONST and other.const is not _NO_CONST
                and self.const == other.const):
            const = self.const
        elif not self.maybe_value:
            const = other.const
        elif not other.maybe_value:
            const = self.const
        else:
            const = _NO_CONST
        return AbsValue(
            maybe_value=self.maybe_value or other.maybe_value,
            may_unk=self.may_unk or other.may_unk,
            may_dne=self.may_dne or other.may_dne,
            sorts=sorts, card=card, length=length, element=element,
            fields=fields, always=always, closed=closed, num=num,
            const=const, total=self.total and other.total)


def abs_of_value(value: Any, depth: int = SCAN_DEPTH) -> AbsValue:
    """Exact abstraction of a concrete stored value."""
    if value is UNK or value is DNE:
        return AbsValue.null(value)
    if isinstance(value, MultiSet):
        return AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset(["set"]),
                        card=Interval.exact(len(value)),
                        element=_abs_of_elements(value.elements(), depth),
                        total=True)
    if isinstance(value, Arr):
        return AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset(["arr"]),
                        length=Interval.exact(len(value)),
                        element=_abs_of_elements(list(value), depth),
                        total=True)
    if isinstance(value, Tup):
        if depth <= 0:
            return AbsValue(may_unk=False, may_dne=False,
                            sorts=frozenset(["tup"]), total=True)
        fields = {name: abs_of_value(value[name], depth - 1)
                  for name in value.field_names}
        return AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset(["tup"]), fields=fields,
                        always=frozenset(fields), closed=True, total=True)
    if isinstance(value, Ref):
        return AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset(["ref"]), const=value, total=True)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        sort = "str" if isinstance(value, str) else "other"
        if isinstance(value, bool):
            sort = "other"
        return AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset([sort]), const=value, total=True)
    return AbsValue(may_unk=False, may_dne=False, sorts=frozenset(["num"]),
                    num=(float(value), float(value)), const=value,
                    total=True)


def _abs_of_elements(elements: Any, depth: int) -> AbsValue:
    elements = list(elements)
    if depth <= 0 or len(elements) > SCAN_CAP:
        return AbsValue.top(total=True)
    out: Optional[AbsValue] = None
    for element in elements:
        one = abs_of_value(element, depth - 1)
        out = one if out is None else out.join(one)
    if out is None:
        # Empty collection: the element population is vacuous — model it
        # as "no proper value possible" so joins degrade gracefully.
        return AbsValue(maybe_value=False, may_unk=False, may_dne=False,
                        sorts=frozenset(), total=True)
    return out


class Finding:
    """One analyzer observation, mapped to an L200-series lint code by
    the linter."""

    __slots__ = ("kind", "expr", "message")

    def __init__(self, kind: str, expr: Expr, message: str):
        self.kind = kind
        self.expr = expr
        self.message = message

    def __repr__(self) -> str:
        return "<Finding %s: %s>" % (self.kind, self.message)


class NodeChecks:
    """Runtime assertions for one compiled node under sanitizer mode.

    Built from the node's abstract value; the compiled engine wraps the
    node's closure so every execution checks the emitted facts (and the
    metrics registry counts checks / violations).
    """

    __slots__ = ("label", "card", "length", "may_unk", "may_dne",
                 "maybe_value", "set_only", "arr_only", "dup_free")

    def __init__(self, label: str, abs_value: AbsValue,
                 dup_free: bool = False):
        self.label = label
        self.card = abs_value.card if "set" in (abs_value.sorts or
                                                frozenset(["set"])) else None
        self.length = abs_value.length if "arr" in (abs_value.sorts or
                                                    frozenset(["arr"])) \
            else None
        self.may_unk = abs_value.may_unk
        self.may_dne = abs_value.may_dne
        self.maybe_value = abs_value.maybe_value
        self.set_only = abs_value.definitely("set")
        self.arr_only = abs_value.definitely("arr")
        self.dup_free = dup_free

    def _fail(self, message: str) -> None:
        from ...obs import metrics
        metrics.SANITIZER_VIOLATIONS_TOTAL.inc()
        raise SanitizerError("sanitizer: %s at %s" % (message, self.label))

    def check_value(self, value: Any) -> None:
        from ...obs import metrics
        metrics.SANITIZER_CHECKS_TOTAL.inc()
        if value is UNK:
            if not self.may_unk:
                self._fail("unk emitted but proven impossible")
            return
        if value is DNE:
            if not self.may_dne:
                self._fail("dne emitted but proven impossible")
            return
        if not self.maybe_value:
            self._fail("proper value emitted but proven always-null")
        if isinstance(value, MultiSet):
            if self.card is not None and not self.card.contains(len(value)):
                self._fail("cardinality %d outside proven %s"
                           % (len(value), self.card.describe()))
            if self.dup_free and value.distinct_count() != len(value):
                self._fail("duplicates emitted but proven duplicate-free")
        elif self.set_only:
            self._fail("non-multiset %r but proven multiset" % (value,))
        if isinstance(value, Arr):
            if self.length is not None \
                    and not self.length.contains(len(value)):
                self._fail("length %d outside proven %s"
                           % (len(value), self.length.describe()))
        elif self.arr_only and not isinstance(value, MultiSet):
            self._fail("non-array %r but proven array" % (value,))

    def check_null_stream(self, value: Any) -> None:
        from ...obs import metrics
        metrics.SANITIZER_CHECKS_TOTAL.inc()
        if value is UNK and not self.may_unk:
            self._fail("unk emitted but proven impossible")
        if value is DNE and not self.may_dne:
            self._fail("dne emitted but proven impossible")

    def watch_chunks(self, chunks: Any) -> Any:
        """Count a chunk stream; assert the total on exhaustion."""
        from ...obs import metrics
        total = 0
        seen = set() if self.dup_free else None
        for element, count in chunks:
            total += count
            if seen is not None:
                if element in seen or count != 1:
                    metrics.SANITIZER_CHECKS_TOTAL.inc()
                    self._fail("duplicates emitted but proven "
                               "duplicate-free")
                seen.add(element)
            yield element, count
        metrics.SANITIZER_CHECKS_TOTAL.inc()
        if self.card is not None and not self.card.contains(total):
            self._fail("cardinality %d outside proven %s"
                       % (total, self.card.describe()))

    def check_subscript(self, position: int, length: int) -> None:
        from ...obs import metrics
        metrics.SANITIZER_CHECKS_TOTAL.inc()
        if not 1 <= position <= length:
            self._fail("subscript %d out of bounds for length %d but "
                       "proven safe" % (position, length))


class PlanAnalysis:
    """The result of abstractly interpreting one plan.

    Facts are keyed by node *identity* (the analyzed tree is the tree
    the engine compiles); closed sub-expressions (no free INPUT) are
    additionally available by structural equality for the cost model.
    """

    def __init__(self, root: Expr):
        self.root = root
        self.findings: List[Finding] = []
        self._abs: Dict[int, AbsValue] = {}
        self._keep: List[Expr] = []
        self._bounds_safe: Dict[int, bool] = {}

    # -- recording (analyzer-side) -------------------------------------

    def _record(self, expr: Expr, value: AbsValue) -> AbsValue:
        prior = self._abs.get(id(expr))
        if prior is not None:
            value = prior.join(value)
        else:
            self._keep.append(expr)
        self._abs[id(expr)] = value
        return value

    def _mark_bounds_safe(self, expr: Expr, safe: bool) -> None:
        # A node reached under several bindings must be safe under all.
        self._bounds_safe[id(expr)] = (
            self._bounds_safe.get(id(expr), True) and safe)

    # -- queries (consumer-side) ---------------------------------------

    def abs_of(self, expr: Expr) -> Optional[AbsValue]:
        return self._abs.get(id(expr))

    def card_bounds(self, expr: Expr) -> Optional[Tuple[float, float]]:
        value = self.abs_of(expr)
        if value is None or not value.definitely("set"):
            return None
        if value.card.is_trivial():
            return None
        return (value.card.lo, value.card.hi)

    def length_bounds(self, expr: Expr) -> Optional[Tuple[float, float]]:
        value = self.abs_of(expr)
        if value is None or not value.definitely("arr"):
            return None
        if value.length.is_trivial():
            return None
        return (value.length.lo, value.length.hi)

    def describe_bounds(self, expr: Any) -> Optional[str]:
        """Proven bounds rendered for EXPLAIN: a set's cardinality as
        ``[lo..hi]`` (comparable to the line's actual/estimated card),
        an array's length as ``len [lo..hi]`` (an array *operator*
        produces one value per call, so its length interval must not
        read as a cardinality)."""
        if not isinstance(expr, Expr):
            return None
        bounds = self.card_bounds(expr)
        if bounds is not None:
            return Interval(bounds[0], bounds[1]).describe()
        bounds = self.length_bounds(expr)
        if bounds is not None:
            return "len " + Interval(bounds[0], bounds[1]).describe()
        return None

    def is_statically_empty(self, expr: Expr) -> bool:
        value = self.abs_of(expr)
        return value is not None and (value.is_statically_empty("set")
                                      or value.is_statically_empty("arr"))

    def is_bounds_safe(self, expr: Expr) -> bool:
        return self._bounds_safe.get(id(expr), False)

    def runtime_checks(self, expr: Expr,
                       dup_free: bool = False) -> Optional["NodeChecks"]:
        value = self.abs_of(expr)
        if value is None:
            return None
        return NodeChecks(expr.describe(), value, dup_free=dup_free)

    def extend_facts(self, facts: Any = None) -> Any:
        """Fold the proven facts into a :class:`PlanFacts` as engine /
        optimizer licenses.  Work-skipping licenses (static emptiness,
        bounds-safe subscripts) additionally require totality."""
        from .facts import PlanFacts
        if facts is None:
            facts = PlanFacts()
        for expr in self._keep:
            value = self._abs[id(expr)]
            if value.total:
                for sort in ("set", "arr"):
                    if value.is_statically_empty(sort):
                        facts.declare_statically_empty(expr, sort)
            if (self._bounds_safe.get(id(expr), False) and value.total
                    and isinstance(expr, ArrExtract)):
                facts.declare_bounds_safe(expr)
            if value.definitely("set") and not value.card.is_trivial():
                facts.declare_cardinality_bounds(
                    expr, value.card.lo, value.card.hi)
        return facts

    def bounds_map(self) -> Dict[Expr, Tuple[float, float]]:
        """Structural expr → proven cardinality bounds, for the cost
        model (closed sub-expressions only: a node mentioning INPUT
        means different things under different bindings)."""
        out: Dict[Expr, Tuple[float, float]] = {}
        for expr in self._keep:
            if expr.uses_input():
                continue
            bounds = self.card_bounds(expr)
            if bounds is not None:
                prior = out.get(expr)
                if prior is not None:
                    bounds = (min(prior[0], bounds[0]),
                              max(prior[1], bounds[1]))
                out[expr] = bounds
        return out


_VERDICT_TOP = frozenset((T, F, U))


class _Analyzer:
    """One bottom-up walk; all state lives on the PlanAnalysis."""

    def __init__(self, analysis: PlanAnalysis, database: Any,
                 statistics: Any = None):
        self.analysis = analysis
        self._names: Dict[str, Any] = {}
        self._seeded: Dict[str, AbsValue] = {}
        if database is not None:
            if hasattr(database, "names") and hasattr(database, "get"):
                for name in database.names():
                    self._names[name] = database.get(name)
            else:  # a plain name → value mapping (EvalContext.database)
                self._names.update(database)
        self.statistics = statistics

    # -- dispatch ------------------------------------------------------

    def eval(self, expr: Expr, env: Optional[AbsValue]) -> AbsValue:
        method = getattr(self, "_t_%s" % type(expr).__name__, None)
        if method is None:
            out = self._t_unknown(expr, env)
        else:
            out = method(expr, env)
        return self.analysis._record(expr, out)

    def _t_unknown(self, expr: Expr, env: Optional[AbsValue]) -> AbsValue:
        """An operator with no transfer function: its result is TOP, but
        its sub-expressions are still analyzed so proofs (and findings —
        an out-of-bounds subscript below a DEREF, say) don't stop at the
        first unmodeled node.  Binding bodies see an unknown element."""
        for field in expr._fields:
            value = getattr(expr, field)
            child_env = (AbsValue.top(total=True)
                         if field in expr._binding_fields else env)
            if isinstance(value, Expr):
                self.eval(value, child_env)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Expr):
                        self.eval(item, child_env)
        return AbsValue.top(total=False)

    # -- leaves --------------------------------------------------------

    def _t_Input(self, expr: Input, env: Optional[AbsValue]) -> AbsValue:
        if env is None:
            return AbsValue.top(total=False)
        return env.but(total=True)

    def _t_Const(self, expr: Const, env: Optional[AbsValue]) -> AbsValue:
        return abs_of_value(expr.value)

    def _t_Named(self, expr: Named, env: Optional[AbsValue]) -> AbsValue:
        if expr.name not in self._names:
            return AbsValue.top(total=False)
        seeded = self._seeded.get(expr.name)
        if seeded is None:
            seeded = abs_of_value(self._names[expr.name])
            self._seeded[expr.name] = seeded
            self._check_statistics(expr, seeded)
        return seeded

    def _check_statistics(self, expr: Named, seeded: AbsValue) -> None:
        """Cross-check catalog statistics against the proven exact
        cardinality of a stored extent (finding kind
        ``stats_contradiction``, linted as L206)."""
        if self.statistics is None or not seeded.definitely("set"):
            return
        stats = self.statistics.object(expr.name)
        est = stats.cardinality
        card = seeded.card
        # from_database floors cardinality at 1; tolerate that on empty
        # extents, and flag anything off by more than 2× otherwise.
        actual = max(card.hi, 1.0)
        if est > 2.0 * actual or est < actual / 2.0:
            self.analysis.findings.append(Finding(
                "stats_contradiction", expr,
                "catalog statistics estimate %.0f for %r contradicts the "
                "proven cardinality %s (stale stats?)"
                % (est, expr.name, card.describe())))

    def _t_IndexedTypeScan(self, expr: IndexedTypeScan,
                           env: Optional[AbsValue]) -> AbsValue:
        base = self._names.get(expr.object_name)
        if isinstance(base, MultiSet):
            seeded = abs_of_value(base)
            return AbsValue(may_unk=False, may_dne=False,
                            sorts=frozenset(["set"]),
                            card=Interval(0, seeded.card.hi),
                            element=seeded.element, total=False)
        return AbsValue.top(total=False)

    # -- multiset operators --------------------------------------------

    def _source_set(self, expr: Expr, field: str,
                    env: Optional[AbsValue]) -> Tuple[AbsValue, AbsValue,
                                                      bool]:
        """Evaluate a set-typed operand; return (abs, element, ok)."""
        src = self.eval(getattr(expr, field), env)
        element = src.element if src.element is not None \
            else AbsValue.top(total=True)
        # Multiset construction drops dne elements.
        element = element.but(may_dne=False)
        return src, element, src.definitely("set")

    def _t_SetApply(self, expr: SetApply,
                    env: Optional[AbsValue]) -> AbsValue:
        return self._apply(expr, env, is_arr=False)

    def _t_ArrApply(self, expr: ArrApply,
                    env: Optional[AbsValue]) -> AbsValue:
        return self._apply(expr, env, is_arr=True)

    def _apply(self, expr: Any, env: Optional[AbsValue],
               is_arr: bool) -> AbsValue:
        sort = "arr" if is_arr else "set"
        src = self.eval(expr.source, env)
        element = src.element if src.element is not None \
            else AbsValue.top(total=True)
        if not is_arr:
            element = element.but(may_dne=False)
        ok = src.definitely(sort)
        size = src.length if is_arr else src.card
        sigma = (isinstance(expr.body, Comp)
                 and isinstance(expr.body.source, Input))
        if sigma:
            verdicts, pred_total = self._verdicts(expr.body.pred, element)
            body_out = element.but(
                maybe_value=element.maybe_value and T in verdicts,
                may_unk=element.may_unk or U in verdicts,
                may_dne=element.may_dne or F in verdicts,
                total=pred_total)
            self.analysis._record(expr.body, body_out)
            if expr.type_filter is None and element.maybe_value:
                if verdicts == frozenset((F,)) and not element.may_unk:
                    self.analysis.findings.append(Finding(
                        "unsat_sigma", expr,
                        "σ predicate %s is statically unsatisfiable — "
                        "the subplan is provably empty"
                        % expr.body.pred.describe()))
                elif verdicts == frozenset((T,)):
                    self.analysis.findings.append(Finding(
                        "taut_sigma", expr,
                        "σ predicate %s is statically tautological — "
                        "the filter is the identity"
                        % expr.body.pred.describe()))
        else:
            body_out = self.eval(expr.body, element)
        dropped_all = (not body_out.maybe_value and not body_out.may_unk)
        if dropped_all or not element.maybe_value and not element.may_unk:
            out_size = Interval.exact(0)
        elif (sigma and expr.type_filter is None
                and not body_out.may_dne):
            out_size = size  # tautological σ keeps every occurrence
        elif expr.type_filter is None and not body_out.may_dne:
            out_size = size if not is_arr else Interval(size.lo, size.hi)
        else:
            out_size = Interval(0, size.hi)
        out_elem = body_out.strip_nulls().but(
            may_unk=body_out.may_unk) if not is_arr else body_out.but(
            may_dne=False)
        total = src.total and ok and body_out.total
        return AbsValue(
            may_unk=src.may_unk, may_dne=src.may_dne,
            maybe_value=src.maybe_value,
            sorts=frozenset([sort]) if ok else None,
            card=out_size if not is_arr else Interval.top(),
            length=out_size if is_arr else Interval.top(),
            element=out_elem, total=total)

    def _t_Grp(self, expr: Grp, env: Optional[AbsValue]) -> AbsValue:
        src, element, ok = self._source_set(expr, "source", env)
        key = self.eval(expr.by, element)
        if src.is_statically_empty("set"):
            self.analysis.findings.append(Finding(
                "empty_grp_input", expr,
                "GRP input is statically empty — no groups can form"))
        if not key.maybe_value and not key.may_unk:
            out_card = Interval.exact(0)  # every key dne → all dropped
        elif src.card.lo >= 1 and not key.may_dne and element.maybe_value:
            out_card = Interval(1, src.card.hi)
        else:
            out_card = Interval(0, src.card.hi)
        group = AbsValue(may_unk=False, may_dne=False,
                         sorts=frozenset(["set"]),
                         card=Interval(1, src.card.hi), element=element,
                         total=True)
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["set"]) if ok else None,
                        card=out_card, element=group,
                        total=src.total and ok and key.total)

    def _t_DE(self, expr: DE, env: Optional[AbsValue]) -> AbsValue:
        src, element, ok = self._source_set(expr, "source", env)
        out_card = Interval(1 if src.card.lo >= 1 else 0, src.card.hi)
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["set"]) if ok else None,
                        card=out_card, element=element,
                        total=src.total and ok)

    def _t_SetCreate(self, expr: SetCreate,
                     env: Optional[AbsValue]) -> AbsValue:
        body = self.eval(expr.source, env)
        return AbsValue(may_unk=body.may_unk, may_dne=body.may_dne,
                        maybe_value=body.maybe_value,
                        sorts=frozenset(["set"]),
                        card=Interval.exact(1),
                        element=body.strip_nulls().but(
                            may_unk=body.may_unk, total=True),
                        total=body.total)

    def _t_AddUnion(self, expr: AddUnion,
                    env: Optional[AbsValue]) -> AbsValue:
        l, le, lok = self._source_set(expr, "left", env)
        r, re_, rok = self._source_set(expr, "right", env)
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["set"]) if lok and rok else None,
                        card=l.card.add(r.card), element=le.join(re_),
                        total=l.total and r.total and lok and rok)

    def _t_Diff(self, expr: Diff, env: Optional[AbsValue]) -> AbsValue:
        l, le, lok = self._source_set(expr, "left", env)
        r, _, rok = self._source_set(expr, "right", env)
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["set"]) if lok and rok else None,
                        card=l.card.minus_floor(r.card), element=le,
                        total=l.total and r.total and lok and rok)

    def _t_Cross(self, expr: Cross, env: Optional[AbsValue]) -> AbsValue:
        l, le, lok = self._source_set(expr, "left", env)
        r, re_, rok = self._source_set(expr, "right", env)
        for side, name in ((l, "left"), (r, "right")):
            if side.is_statically_empty("set"):
                self.analysis.findings.append(Finding(
                    "empty_join_input", expr,
                    "× (join) %s input is statically empty — the join "
                    "produces nothing" % name))
        pair = AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset(["tup"]),
                        fields={"field1": le, "field2": re_},
                        always=frozenset(("field1", "field2")),
                        closed=True, total=True)
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["set"]) if lok and rok else None,
                        card=l.card.mul(r.card), element=pair,
                        total=l.total and r.total and lok and rok)

    def _t_SetCollapse(self, expr: SetCollapse,
                       env: Optional[AbsValue]) -> AbsValue:
        src, element, ok = self._source_set(expr, "source", env)
        inner_ok = element.definitely("set") or not element.maybe_value
        if inner_ok:
            card = src.card.mul(element.card)
            inner = element.element
        else:
            card = Interval.top()
            inner = None
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["set"]) if ok else None,
                        card=card, element=inner,
                        total=src.total and ok and inner_ok
                        and not element.may_unk)

    # -- selection -----------------------------------------------------

    def _t_Comp(self, expr: Comp, env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        verdicts, pred_total = self._verdicts(expr.pred, src)
        return src.but(
            maybe_value=src.maybe_value and T in verdicts,
            may_unk=src.may_unk or (src.maybe_value and U in verdicts),
            may_dne=src.may_dne or (src.maybe_value and F in verdicts),
            total=src.total and pred_total)

    def _verdicts(self, pred: Predicate,
                  elem: AbsValue) -> Tuple[FrozenSet[str], bool]:
        """Possible Kleene verdicts of *pred* over elements described by
        *elem*, plus whether testing it can provably never raise."""
        if isinstance(pred, TruePred):
            return frozenset((T,)), True
        if isinstance(pred, And):
            lv, lt = self._verdicts(pred.left, elem)
            rv, rt = self._verdicts(pred.right, elem)
            out = set()
            if F in lv or F in rv:
                out.add(F)
            if U in lv or U in rv:
                out.add(U)
            if T in lv and T in rv:
                out.add(T)
            # F short-circuits U/T in kleene_and; keep the closure tight.
            return frozenset(out) or frozenset((F,)), lt and rt
        if isinstance(pred, Not):
            iv, it = self._verdicts(pred.inner, elem)
            return frozenset(kleene_not(v) for v in iv), it
        if isinstance(pred, Atom):
            return self._atom_verdicts(pred, elem)
        return _VERDICT_TOP, False

    def _atom_verdicts(self, atom: Atom,
                       elem: AbsValue) -> Tuple[FrozenSet[str], bool]:
        l = self.eval(atom.left, elem)
        r = self.eval(atom.right, elem)
        verdicts = set()
        if l.may_dne or r.may_dne:
            verdicts.add(F)
        both_values = l.maybe_value and r.maybe_value
        if (l.may_unk and (r.maybe_value or r.may_unk)) \
                or (r.may_unk and (l.maybe_value or l.may_unk)):
            verdicts.add(U)
        total = l.total and r.total
        if not both_values:
            if not verdicts:
                verdicts.add(F)  # unreachable guard: no outcome possible
            return frozenset(verdicts), total
        op = atom.op
        if op in ("<", "<=", ">", ">="):
            verdicts |= self._order_verdicts(op, l, r)
        elif op in ("=", "!="):
            eq = self._eq_verdicts(l, r)
            verdicts |= eq if op == "=" else {kleene_not(v) for v in eq}
        else:  # "in"
            verdicts |= {T, F}
            total = total and (r.definitely("set") or r.definitely("arr"))
        return frozenset(verdicts), total

    def _order_verdicts(self, op: str, l: AbsValue,
                        r: AbsValue) -> FrozenSet[str]:
        if l.num is not None and r.num is not None:
            (llo, lhi), (rlo, rhi) = l.num, r.num
            if op in (">", ">="):
                (llo, lhi), (rlo, rhi) = (rlo, rhi), (llo, lhi)
                op = "<" if op == ">" else "<="
            out = set()
            if op == "<":
                if llo < rhi:
                    out.add(T)
                if lhi >= rlo:
                    out.add(F)
            else:
                if llo <= rhi:
                    out.add(T)
                if lhi > rlo:
                    out.add(F)
            return frozenset(out)
        if l.definitely("str") and r.definitely("str"):
            if l.const is not _NO_CONST and r.const is not _NO_CONST:
                return frozenset((_order_const(op, l.const, r.const),))
            return frozenset((T, F))
        return _VERDICT_TOP  # mixed types can raise TypeError → U

    def _eq_verdicts(self, l: AbsValue, r: AbsValue) -> FrozenSet[str]:
        if l.const is not _NO_CONST and r.const is not _NO_CONST:
            return frozenset((T,)) if l.const == r.const \
                else frozenset((F,))
        if l.num is not None and r.num is not None:
            (llo, lhi), (rlo, rhi) = l.num, r.num
            if lhi < rlo or rhi < llo:
                return frozenset((F,))
            if llo == lhi == rlo == rhi:
                return frozenset((T,))
            return frozenset((T, F))
        if l.sorts is not None and r.sorts is not None \
                and not (l.sorts & r.sorts):
            return frozenset((F,))  # disjoint shapes never compare equal
        return frozenset((T, F))

    # -- tuple operators -----------------------------------------------

    def _t_Pi(self, expr: Pi, env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        ok = src.definitely("tup")
        known = src.fields or {}
        fields = {name: known.get(name, AbsValue.top(total=True))
                  for name in expr.names}
        total = (src.total and ok
                 and all(name in src.always for name in expr.names))
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["tup"]) if ok else None,
                        fields=fields, always=frozenset(expr.names)
                        & src.always, closed=True, total=total)

    def _t_TupExtract(self, expr: TupExtract,
                      env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        ok = src.definitely("tup")
        out = (src.fields or {}).get(expr.field)
        if out is None:
            out = AbsValue.top(total=True)
        total = src.total and ok and expr.field in src.always
        if not src.maybe_value:
            out = out.but(maybe_value=False)
        return out.but(may_unk=out.may_unk or src.may_unk,
                       may_dne=out.may_dne or src.may_dne, total=total)

    def _t_TupCreate(self, expr: TupCreate,
                     env: Optional[AbsValue]) -> AbsValue:
        body = self.eval(expr.source, env)
        return AbsValue(may_unk=body.may_unk, may_dne=body.may_dne,
                        maybe_value=body.maybe_value,
                        sorts=frozenset(["tup"]),
                        fields={expr.field: body.strip_nulls()},
                        always=frozenset((expr.field,)), closed=True,
                        total=body.total)

    def _t_TupCat(self, expr: TupCat,
                  env: Optional[AbsValue]) -> AbsValue:
        l = self.eval(expr.left, env)
        r = self.eval(expr.right, env)
        ok = l.definitely("tup") and r.definitely("tup")
        fields = dict(l.fields or {})
        fields.update(r.fields or {})
        disjoint = (l.closed and r.closed and l.fields is not None
                    and r.fields is not None
                    and not (set(l.fields) & set(r.fields)))
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["tup"]) if ok else None,
                        fields=fields or None, always=l.always | r.always,
                        closed=l.closed and r.closed,
                        total=l.total and r.total and ok and disjoint)

    # -- array operators -----------------------------------------------

    def _t_ArrCreate(self, expr: ArrCreate,
                     env: Optional[AbsValue]) -> AbsValue:
        body = self.eval(expr.source, env)
        return AbsValue(may_unk=body.may_unk, may_dne=body.may_dne,
                        maybe_value=body.maybe_value,
                        sorts=frozenset(["arr"]),
                        length=Interval.exact(1),
                        element=body.strip_nulls().but(
                            may_unk=body.may_unk, total=True),
                        total=body.total)

    def _t_ArrExtract(self, expr: ArrExtract,
                      env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        ok = src.definitely("arr")
        length = src.length
        element = src.element if src.element is not None \
            else AbsValue.top(total=True)
        if ok and src.maybe_value:
            if expr.position == "last":
                in_bounds = length.lo >= 1
                oob = length.hi < 1
            else:
                in_bounds = expr.position <= length.lo
                oob = expr.position > length.hi
        else:
            in_bounds = oob = False
        self.analysis._mark_bounds_safe(expr, in_bounds and ok)
        if oob:
            self.analysis.findings.append(Finding(
                "oob_subscript", expr,
                "ARR_EXTRACT[%s] is statically out of bounds for an "
                "array of proven length %s — the result is always dne"
                % (expr.position, length.describe())))
            out = AbsValue.null(DNE)
        elif in_bounds:
            out = element
        else:
            out = element.but(may_dne=True)
        if not src.maybe_value:
            out = out.but(maybe_value=False)
        return out.but(may_unk=out.may_unk or src.may_unk,
                       may_dne=out.may_dne or src.may_dne,
                       total=src.total and ok)

    def _t_SubArr(self, expr: SubArr,
                  env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        ok = src.definitely("arr")

        def out_len(n: float) -> float:
            lo = n if expr.lower == "last" else float(expr.lower)
            hi = n if expr.upper == "last" else float(expr.upper)
            return max(0.0, min(hi, n) - lo + 1.0)

        # out_len is monotone in n for every lower/upper combination
        # (piecewise linear, slopes all ≥0 or all ≤0), so evaluating at
        # the endpoints bounds it.
        a, b = out_len(src.length.lo), out_len(src.length.hi)
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["arr"]) if ok else None,
                        length=Interval(min(a, b), max(a, b)),
                        element=src.element, total=src.total and ok)

    def _t_ArrCat(self, expr: ArrCat,
                  env: Optional[AbsValue]) -> AbsValue:
        l = self.eval(expr.left, env)
        r = self.eval(expr.right, env)
        ok = l.definitely("arr") and r.definitely("arr")
        le = l.element if l.element is not None else AbsValue.top(total=True)
        re_ = r.element if r.element is not None \
            else AbsValue.top(total=True)
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["arr"]) if ok else None,
                        length=l.length.add(r.length),
                        element=le.join(re_),
                        total=l.total and r.total and ok)

    def _t_ArrCollapse(self, expr: ArrCollapse,
                       env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        ok = src.definitely("arr")
        element = src.element if src.element is not None \
            else AbsValue.top(total=True)
        inner_ok = element.definitely("arr") or not element.maybe_value
        if inner_ok:
            length = src.length.mul(element.length)
            inner = element.element
        else:
            length = Interval.top()
            inner = None
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["arr"]) if ok else None,
                        length=length, element=inner,
                        total=src.total and ok and inner_ok
                        and element.never_null())

    def _t_ArrDiff(self, expr: ArrDiff,
                   env: Optional[AbsValue]) -> AbsValue:
        l = self.eval(expr.left, env)
        r = self.eval(expr.right, env)
        ok = l.definitely("arr") and r.definitely("arr")
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["arr"]) if ok else None,
                        length=l.length.minus_floor(r.length),
                        element=l.element,
                        total=l.total and r.total and ok)

    def _t_ArrDE(self, expr: ArrDE,
                 env: Optional[AbsValue]) -> AbsValue:
        src = self.eval(expr.source, env)
        ok = src.definitely("arr")
        return AbsValue(may_unk=src.may_unk, may_dne=src.may_dne,
                        maybe_value=src.maybe_value,
                        sorts=frozenset(["arr"]) if ok else None,
                        length=Interval(1 if src.length.lo >= 1 else 0,
                                        src.length.hi),
                        element=src.element, total=src.total and ok)

    def _t_ArrCross(self, expr: ArrCross,
                    env: Optional[AbsValue]) -> AbsValue:
        l = self.eval(expr.left, env)
        r = self.eval(expr.right, env)
        ok = l.definitely("arr") and r.definitely("arr")
        for side, name in ((l, "left"), (r, "right")):
            if side.is_statically_empty("arr"):
                self.analysis.findings.append(Finding(
                    "empty_join_input", expr,
                    "ARR_CROSS %s input is statically empty — the "
                    "product is empty" % name))
        le = l.element if l.element is not None else AbsValue.top(total=True)
        re_ = r.element if r.element is not None \
            else AbsValue.top(total=True)
        pair = AbsValue(may_unk=False, may_dne=False,
                        sorts=frozenset(["tup"]),
                        fields={"field1": le, "field2": re_},
                        always=frozenset(("field1", "field2")),
                        closed=True, total=True)
        return AbsValue(may_unk=l.may_unk or r.may_unk,
                        may_dne=l.may_dne or r.may_dne,
                        maybe_value=l.maybe_value and r.maybe_value,
                        sorts=frozenset(["arr"]) if ok else None,
                        length=l.length.mul(r.length), element=pair,
                        total=l.total and r.total and ok)


def _order_const(op: str, left: Any, right: Any) -> str:
    try:
        if op == "<":
            return T if left < right else F
        if op == "<=":
            return T if left <= right else F
        if op == ">":
            return T if left > right else F
        return T if left >= right else F
    except TypeError:
        return U


def analyze(expr: Expr, database: Any = None,
            statistics: Any = None) -> PlanAnalysis:
    """Abstractly interpret *expr* bottom-up.

    *database* may be a :class:`repro.storage.Database`, any object with
    ``names()``/``get()``, or a plain name → value mapping (an
    ``EvalContext``'s ``database`` attribute); ``Named`` leaves are
    seeded exactly from it.  *statistics* (a
    :class:`~repro.core.optimizer.Statistics`), when given, is
    cross-checked against proven extent cardinalities (L206).
    """
    analysis = PlanAnalysis(expr)
    _Analyzer(analysis, database, statistics=statistics).eval(expr, None)
    return analysis
