"""Offline soundness sweep over the full transformation-rule catalog.

Builds a fixed corpus of small, well-typed algebra trees — at least one
trigger per appendix rule (1–28) and per extra rule (X…/XA…) — runs
every single-step rewrite the catalog produces on them, and pushes each
(before, after) pair through the :class:`SoundnessChecker`.  The result
is a report saying which rules actually fired and whether every firing
preserved the inferred schema.

Run it directly (``python -m repro.core.analysis.rulecheck``, or
``make verify-plans``) to gate the rule catalog offline; the test suite
asserts the same report is clean.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..expr import Const, Expr, Func, Input, Named
from ..operators import (DE, AddUnion, ArrApply, ArrCat, ArrCollapse,
                         ArrCreate, ArrDE, ArrExtract, Cross, Deref, Diff,
                         Grp, Pi, RefOp, SetApply, SetCollapse, SetCreate,
                         SubArr, TupCat, TupCreate, TupExtract)
from ..predicates import Atom, Comp, Or, TruePred
from ..schema import SchemaCatalog, SchemaNode
from ..transform import ALL_RULES
from ..transform.engine import single_step_rewrites
from ..transform.rule import RewriteFacts, make_pairwise_body
from ..values import Arr, MultiSet
from .inference import TypeInference
from .soundness import RewriteSoundnessError, SoundnessChecker

#: Rule numbers the paper's appendix assigns; the sweep must exercise
#: every one of them.
NUMBERED_RULES = frozenset(range(1, 29))


def standard_environment() -> TypeInference:
    """A TypeInference over the fixed corpus vocabulary."""
    catalog = SchemaCatalog()
    person = SchemaNode.tup({"name": SchemaNode.val(str),
                             "age": SchemaNode.val(int),
                             "city": SchemaNode.val(str)}, name="Person")
    catalog.register(person, "Person")
    city = SchemaNode.tup({"cname": SchemaNode.val(str),
                           "tag": SchemaNode.val(int)}, name="CityT")
    catalog.register(city, "CityT")

    def persons():
        return SchemaNode.set_of(person.clone())

    def ints():
        return SchemaNode.set_of(SchemaNode.val(int))

    def int_arr():
        return SchemaNode.arr_of(SchemaNode.val(int))

    named = {
        "A": persons(), "B": persons(), "C": persons(),
        "Cities": SchemaNode.set_of(city.clone()),
        "Nums": ints(),
        "NS1": SchemaNode.set_of(ints()),
        "NS2": SchemaNode.set_of(ints()),
        "Refs": SchemaNode.set_of(SchemaNode.ref_to("Person")),
        "ArrA": int_arr(), "ArrB": int_arr(), "ArrC": int_arr(),
        "NestedArr1": SchemaNode.arr_of(int_arr()),
        "NestedArr2": SchemaNode.arr_of(int_arr()),
    }
    signatures = {"neg": lambda arg_schemas: SchemaNode.val(int)}
    return TypeInference(named, catalog, signatures)


def standard_facts() -> RewriteFacts:
    """Side conditions the conditional rules (5, 9, 17, 21) need."""
    facts = RewriteFacts()
    facts.declare_nonempty(Named("A"))
    facts.declare_nonempty(Named("B"))
    facts.declare_length(Named("ArrA"), 3)
    return facts


def _sigma(pred, source: Expr) -> Expr:
    return SetApply(Comp(pred, Input()), source)


def rule_corpus() -> List[Expr]:
    """Well-typed trees that collectively trigger every catalog rule."""
    p_age = Atom(TupExtract("age", Input()), "<", Const(30))
    p_city = Atom(TupExtract("city", Input()), "=", Const("Madison"))
    pair_flatten = TupCat(TupExtract("field1", Input()),
                          TupExtract("field2", Input()))
    neg = Func("neg", [Input()])
    A, B, C = Named("A"), Named("B"), Named("C")
    cities = Named("Cities")
    ns1, ns2 = Named("NS1"), Named("NS2")
    arr_a, arr_b, arr_c = Named("ArrA"), Named("ArrB"), Named("ArrC")

    return [
        # -- multiset rules 1-15 ----------------------------------------
        AddUnion(AddUnion(A, B), C),                               # 1
        Cross(A, AddUnion(B, C)),                                  # 2
        SetApply(pair_flatten, Cross(A, cities)),                  # 3
        _sigma(Or(p_age, p_city), A),                              # 4
        DE(SetApply(TupExtract("field1", Input()), Cross(A, B))),  # 5
        DE(Grp(TupExtract("city", Input()), A)),                   # 6
        DE(Cross(A, B)),                                           # 7
        Grp(TupExtract("city", Input()), DE(A)),                   # 8
        Grp(TupExtract("city", TupExtract("field1", Input())),
            Cross(A, B)),                                          # 9
        Grp(TupExtract("city", Input()), _sigma(p_age, A)),        # 10
        SetCollapse(AddUnion(ns1, ns2)),                           # 11
        SetApply(TupExtract("name", Input()), AddUnion(A, B)),     # 12
        SetApply(make_pairwise_body(TupExtract("name", Input()),
                                    TupExtract("cname", Input())),
                 Cross(A, cities)),                                # 13
        SetApply(neg, SetCollapse(ns1)),                           # 14
        SetApply(TupCreate("a", Input()),
                 SetApply(TupExtract("name", Input()), A)),        # 15
        # -- array rules 16-22 ------------------------------------------
        ArrCat(arr_a, ArrCat(arr_b, arr_c)),                       # 16
        ArrExtract(4, ArrCat(arr_a, arr_b)),                       # 17
        ArrExtract(2, SubArr(2, 5, arr_a)),                        # 18
        ArrExtract(1, ArrApply(neg, arr_a)),                       # 19
        SubArr(1, 2, SubArr(2, 6, arr_a)),                         # 20
        SubArr(2, 5, ArrCat(arr_a, arr_b)),                        # 21
        SubArr(1, 2, ArrApply(neg, arr_a)),                        # 22
        # -- tuple / predicate / ref rules 23-28 ------------------------
        TupCat(TupCreate("a", Const(1)), TupCreate("b", Const(2))),  # 23
        Pi(["name", "city"],
           TupCat(TupCreate("name", Const("x")),
                  TupCreate("city", Const("y")))),                 # 24
        TupExtract("a", TupCat(TupCreate("a", Const(1)),
                               TupCreate("b", Const(2)))),         # 25
        SetApply(TupExtract("name",
                            Comp(Atom(TupExtract("name", Input()),
                                      "=", Const("x")),
                                 Input())), A),                    # 26
        SetApply(Comp(Atom(Input(), "<", Const(5)),
                      TupExtract("age", Input())), A),             # 26R
        SetApply(Comp(p_age, Comp(p_city, Input())), A),           # 27
        Deref(RefOp(TupCreate("a", Const(1)))),                    # 28
        # -- extra multiset rules ---------------------------------------
        DE(DE(A)),                                                 # X1
        DE(SetApply(TupExtract("name", Input()), A)),              # X2
        DE(AddUnion(A, B)),                                        # X3
        SetApply(Input(), A),                                      # X5
        SetApply(Comp(TruePred(), Input()), A),                    # X6
        _sigma(p_age, Diff(A, B)),                                 # X7
        SetCollapse(SetCreate(A)),                                 # X8
        DE(SetCreate(Const(1))),                                   # X9
        Diff(A, A),                                                # X10
        AddUnion(A, Const(MultiSet())),                            # X11
        # -- extra array rules ------------------------------------------
        ArrApply(neg, ArrApply(neg, arr_a)),                       # XA1
        ArrApply(Input(), arr_a),                                  # XA2
        ArrApply(neg, ArrCat(arr_a, arr_b)),                       # XA3
        ArrDE(ArrDE(arr_a)),                                       # XA4
        ArrCollapse(ArrCat(Named("NestedArr1"), Named("NestedArr2"))),
        ArrCat(arr_a, Const(Arr())),                               # XA6
        ArrDE(ArrCreate(Const(1))),                                # XA7
        ArrCollapse(ArrCreate(arr_a)),                             # XA8
    ]


class RuleCheckReport:
    """Outcome of one full sweep: firings, failures, coverage."""

    def __init__(self):
        self.fired: Dict[object, int] = {}
        self.failures: List[Tuple[object, RewriteSoundnessError]] = []
        self.checked = 0
        self.skipped = 0

    @property
    def missing(self) -> List[int]:
        """Appendix rule numbers the corpus never triggered."""
        return sorted(NUMBERED_RULES
                      - {n for n in self.fired if isinstance(n, int)})

    def ok(self) -> bool:
        return not self.failures and not self.missing

    def describe(self) -> str:
        lines = ["rule soundness sweep: %d rewrites checked, %d rules "
                 "fired" % (self.checked, len(self.fired))]
        for number in sorted(self.fired, key=str):
            lines.append("  rule %-4s fired %d time(s), schema preserved"
                         % (number, self.fired[number]))
        if self.skipped:
            lines.append("  (%d rewrites skipped: ill-typed input)"
                         % self.skipped)
        for number, error in self.failures:
            lines.append("  FAILURE rule %s: %s" % (number, error))
        if self.missing:
            lines.append("  MISSING coverage for rule(s): %s"
                         % ", ".join(map(str, self.missing)))
        if self.ok():
            lines.append("all %d appendix rules fired and passed"
                         % len(NUMBERED_RULES))
        return "\n".join(lines)


def verify_all_rules(rules=None, checker: Optional[TypeInference] = None,
                     facts: Optional[RewriteFacts] = None,
                     fail_fast: bool = False) -> RuleCheckReport:
    """Sweep the corpus through every rule; gate every rewrite."""
    rules = list(ALL_RULES if rules is None else rules)
    env = checker or standard_environment()
    facts = facts or standard_facts()
    gate = SoundnessChecker(env)
    report = RuleCheckReport()
    for tree in rule_corpus():
        env.check(tree)  # the corpus itself must be well-typed
        for rule, candidate in single_step_rewrites(tree, rules, facts):
            before_checked = gate.checked
            try:
                gate(rule, tree, candidate)
            except RewriteSoundnessError as error:
                if fail_fast:
                    raise
                report.failures.append((rule.number, error))
                continue
            if gate.checked > before_checked:
                key = rule.number if rule.number is not None else rule.name
                report.fired[key] = report.fired.get(key, 0) + 1
    report.checked = gate.checked
    report.skipped = gate.skipped
    return report


def main() -> int:
    report = verify_all_rules()
    print(report.describe())
    return 0 if report.ok() else 1


if __name__ == "__main__":
    raise SystemExit(main())
