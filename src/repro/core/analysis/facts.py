"""Derived plan facts the engines may consume as optimization licenses.

The flagship fact is *duplicate-freedom*: a multiset expression whose
result provably carries every occurrence at most once.  The linter uses
it to flag redundant ``DE`` (code L102), and the compiled engine uses
it to turn a ``DE`` operator into a pass-through (PR 1's hash dedup
still works without it; the license only removes the hash table).

The derivation is deliberately conservative — only constructs whose
*output* is duplicate-free by definition qualify:

* ``DE(A)`` and ``ARR_DE(A)`` — that is their semantics;
* ``GRP`` — groups are keyed by the grouping value, so each inner
  multiset occurs once per key;
* ``SET_CREATE(e)`` — a singleton;
* ``A − B`` when A is duplicate-free (− removes occurrences);
* a ``Const`` multiset literal that happens to contain no duplicates.

Note σ (COMP inside SET_APPLY) does **not** preserve the property in
general: a filtering SET_APPLY keeps the *source* occurrences, but any
element the predicate judges *unknown* is replaced by ``unk`` — two
distinct survivors with U verdicts collapse into ``unk`` duplicates.
σ therefore preserves duplicate-freedom only when the predicate
provably never returns U over the source population; that proof is
done per-extent by :func:`facts_for_database` (scanning the stored
values behind a ``Named`` source) or per-plan by the abstract
interpreter (:mod:`repro.core.analysis.absint`), and declared via
:meth:`PlanFacts.declare_sigma_dupfree`.  This is what lets ``DE``
above a unique-key index probe become a pass-through: the compiled
probe emits exactly the occurrences the σ would keep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..expr import Const, Expr, Input
from ..operators.arrays import ArrDE
from ..operators.multiset import DE, Diff, Grp, SetApply, SetCreate
from ..predicates import And, Atom, Comp, Not, Predicate, TruePred
from ..values import DNE, UNK, Arr, MultiSet, Tup


def duplicate_free(expr: Expr) -> bool:
    """Structurally provable duplicate-freedom of *expr*'s result."""
    if isinstance(expr, (DE, ArrDE, Grp, SetCreate)):
        return True
    if isinstance(expr, Diff):
        return duplicate_free(expr.left)
    if isinstance(expr, SetApply) and isinstance(expr.body, Input):
        # Identity body: output occurrences are a sub-tally of the
        # source's (the type filter only drops), nothing merges.
        return duplicate_free(expr.source)
    if isinstance(expr, Const) and isinstance(expr.value, MultiSet):
        return expr.value.distinct_count() == len(expr.value)
    return False


class PlanFacts:
    """Facts about a specific plan, keyed by sub-expression.

    Structural derivation (:func:`duplicate_free`) is always consulted;
    explicitly declared facts extend it — e.g. the verifier declares a
    ``Named`` source duplicate-free after inspecting the stored value.
    """

    def __init__(self) -> None:
        self._duplicate_free: List[Expr] = []
        self._probe_complete: set = set()
        self._sigma_dupfree: List[Expr] = []
        # Analyzer-derived facts are keyed by node identity: the
        # analysis runs on the exact tree the engine compiles, and a
        # structurally-equal node under a different INPUT binding must
        # not inherit them.  _keep_alive pins the nodes so ids stay
        # unique for the facts' lifetime.
        self._empty: Dict[int, str] = {}
        self._bounds_safe: set = set()
        self._card_bounds: Dict[int, Tuple[float, float]] = {}
        self._keep_alive: List[Expr] = []

    def declare_duplicate_free(self, expr: Expr) -> "PlanFacts":
        self._duplicate_free.append(expr)
        return self

    def declare_sigma_dupfree(self, expr: Expr) -> "PlanFacts":
        """License: this filtering SET_APPLY's predicate never returns
        U over its source population, so it preserves the source's
        duplicate-freedom (occurrences pass through unmerged)."""
        self._sigma_dupfree.append(expr)
        return self

    def is_duplicate_free(self, expr: Expr) -> bool:
        if duplicate_free(expr):
            return True
        if any(expr == declared for declared in self._duplicate_free):
            return True
        if (isinstance(expr, SetApply)
                and any(expr is declared or expr == declared
                        for declared in self._sigma_dupfree)):
            return self.is_duplicate_free(expr.source)
        return False

    def declare_statically_empty(self, expr: Expr,
                                 sort: str) -> "PlanFacts":
        """License: *expr* provably evaluates to the empty multiset
        (``sort == "set"``) or empty array (``"arr"``) *and* its
        evaluation cannot raise — the engine may skip it entirely."""
        self._empty[id(expr)] = sort
        self._keep_alive.append(expr)
        return self

    def statically_empty_sort(self, expr: Expr) -> Optional[str]:
        return self._empty.get(id(expr))

    def is_statically_empty(self, expr: Expr) -> bool:
        return id(expr) in self._empty

    def declare_bounds_safe(self, expr: Expr) -> "PlanFacts":
        """License: this ARR_EXTRACT's subscript is provably in bounds
        for every array its source can produce — the engine may elide
        the bounds check."""
        self._bounds_safe.add(id(expr))
        self._keep_alive.append(expr)
        return self

    def is_bounds_safe(self, expr: Expr) -> bool:
        return id(expr) in self._bounds_safe

    def declare_cardinality_bounds(self, expr: Expr, lo: float,
                                   hi: float) -> "PlanFacts":
        """Proven output-cardinality interval for a multiset node; the
        optimizer clamps its estimates into it."""
        self._card_bounds[id(expr)] = (lo, hi)
        self._keep_alive.append(expr)
        return self

    def cardinality_bounds(self,
                           expr: Expr) -> Optional[Tuple[float, float]]:
        return self._card_bounds.get(id(expr))

    def declare_probe_complete(self, name: str) -> "PlanFacts":
        """License: the index catalog's probe streams over named extent
        *name* are duplicate-complete — every occurrence of the stored
        multiset lands in exactly one bucket/partition (plus the UNK
        tally), so an index probe may substitute for a full scan."""
        self._probe_complete.add(name)
        return self

    def is_probe_complete(self, name: str) -> bool:
        return name in self._probe_complete


def _operand_values(operand: Expr, elements: List[Any]) -> Optional[list]:
    """Concrete values an atom operand takes over the σ population, or
    None when the operand is too opaque to enumerate."""
    if isinstance(operand, Const):
        return [operand.value]
    if isinstance(operand, Input):
        return list(elements)
    from ..operators.tuples import TupExtract
    if isinstance(operand, TupExtract) and isinstance(operand.source,
                                                     Input):
        out = []
        for element in elements:
            if not isinstance(element, Tup):
                return None
            out.append(element.get(operand.field, DNE))
        return out
    return None


def _sigma_never_unknown(pred: Predicate, elements: List[Any]) -> bool:
    """True when *pred* provably never returns U over *elements*.

    Sound but deliberately shallow: operands must be constants or
    direct field extractions from INPUT, values must exclude ``unk``,
    and order comparisons must be type-uniform (mixed types raise
    ``TypeError`` inside ``_compare_scalars``, which surfaces as U).
    """
    if isinstance(pred, TruePred):
        return True
    if isinstance(pred, And):
        return (_sigma_never_unknown(pred.left, elements)
                and _sigma_never_unknown(pred.right, elements))
    if isinstance(pred, Not):
        return _sigma_never_unknown(pred.inner, elements)
    if not isinstance(pred, Atom):
        return False
    left = _operand_values(pred.left, elements)
    right = _operand_values(pred.right, elements)
    if left is None or right is None:
        return False
    if any(v is UNK for v in left) or any(v is UNK for v in right):
        return False
    if pred.op in ("<", "<=", ">", ">="):
        scalars = [v for v in left + right if v is not DNE]
        numeric = all(isinstance(v, (int, float))
                      and not isinstance(v, bool) for v in scalars)
        stringy = all(isinstance(v, str) for v in scalars)
        return numeric or stringy
    if pred.op == "in":
        for collection in right:
            if collection is DNE:
                continue
            if isinstance(collection, MultiSet):
                members = collection.elements()
            elif isinstance(collection, Arr):
                members = list(collection)
            else:
                return False
            if any(m is UNK for m in members):
                return False
        return True
    return True  # = / != over non-unk values are two-valued


def facts_for_database(db, plan: Optional[Expr] = None) -> PlanFacts:
    """PlanFacts seeded from the stored values of named objects.

    Scans each named multiset once; those without duplicate occurrences
    become declared duplicate-free, so ``DE(Named(n))`` over them can be
    elided by the compiled engine.

    When *plan* is given, filtering ``SET_APPLY`` nodes directly over a
    duplicate-free named extent are also checked: if the σ predicate
    provably never returns U over the stored population, the node is
    declared duplicate-free too.  This is what licenses ``DE`` above a
    unique-key index probe as a pass-through — the probe emits exactly
    the occurrences the σ keeps.
    """
    from ..expr import Named

    facts = PlanFacts()
    mentioned: Optional[set] = None
    if plan is not None:
        mentioned = {node.name for node in plan.walk()
                     if isinstance(node, Named)}
    dupfree_values: Dict[str, MultiSet] = {}
    for name in db.names():
        if mentioned is not None and name not in mentioned:
            continue
        value = db.get(name)
        if (isinstance(value, MultiSet)
                and value.distinct_count() == len(value)):
            facts.declare_duplicate_free(Named(name))
            dupfree_values[name] = value
    indexes = getattr(db, "indexes", None)
    if indexes is not None:
        for entry in indexes.definitions():
            if mentioned is None or entry["name"] in mentioned:
                facts.declare_probe_complete(entry["name"])
    if plan is not None and dupfree_values:
        for node in plan.walk():
            if not (isinstance(node, SetApply)
                    and isinstance(node.body, Comp)
                    and isinstance(node.body.source, Input)
                    and isinstance(node.source, Named)
                    and node.source.name in dupfree_values):
                continue
            stored = dupfree_values[node.source.name]
            if _sigma_never_unknown(node.body.pred, stored.elements()):
                facts.declare_sigma_dupfree(node)
    return facts


#: Placeholder for future fact kinds (nonemptiness, known lengths, …).
FactTable = Dict[str, Any]
