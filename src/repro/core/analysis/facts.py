"""Derived plan facts the engines may consume as optimization licenses.

The flagship fact is *duplicate-freedom*: a multiset expression whose
result provably carries every occurrence at most once.  The linter uses
it to flag redundant ``DE`` (code L102), and the compiled engine uses
it to turn a ``DE`` operator into a pass-through (PR 1's hash dedup
still works without it; the license only removes the hash table).

The derivation is deliberately conservative — only constructs whose
*output* is duplicate-free by definition qualify:

* ``DE(A)`` and ``ARR_DE(A)`` — that is their semantics;
* ``GRP`` — groups are keyed by the grouping value, so each inner
  multiset occurs once per key;
* ``SET_CREATE(e)`` — a singleton;
* ``A − B`` when A is duplicate-free (− removes occurrences);
* a ``Const`` multiset literal that happens to contain no duplicates.

Note σ (COMP inside SET_APPLY) does **not** preserve the property:
distinct inputs can map to equal outputs under the identity body only,
and a filtering SET_APPLY keeps the *source* occurrences — but a
non-identity body can merge distinct elements into duplicates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..expr import Const, Expr
from ..operators.arrays import ArrDE
from ..operators.multiset import DE, Diff, Grp, SetCreate
from ..values import MultiSet


def duplicate_free(expr: Expr) -> bool:
    """Structurally provable duplicate-freedom of *expr*'s result."""
    if isinstance(expr, (DE, ArrDE, Grp, SetCreate)):
        return True
    if isinstance(expr, Diff):
        return duplicate_free(expr.left)
    if isinstance(expr, Const) and isinstance(expr.value, MultiSet):
        return expr.value.distinct_count() == len(expr.value)
    return False


class PlanFacts:
    """Facts about a specific plan, keyed by sub-expression.

    Structural derivation (:func:`duplicate_free`) is always consulted;
    explicitly declared facts extend it — e.g. the verifier declares a
    ``Named`` source duplicate-free after inspecting the stored value.
    """

    def __init__(self):
        self._duplicate_free: List[Expr] = []
        self._probe_complete: set = set()

    def declare_duplicate_free(self, expr: Expr) -> "PlanFacts":
        self._duplicate_free.append(expr)
        return self

    def is_duplicate_free(self, expr: Expr) -> bool:
        if duplicate_free(expr):
            return True
        return any(expr == declared for declared in self._duplicate_free)

    def declare_probe_complete(self, name: str) -> "PlanFacts":
        """License: the index catalog's probe streams over named extent
        *name* are duplicate-complete — every occurrence of the stored
        multiset lands in exactly one bucket/partition (plus the UNK
        tally), so an index probe may substitute for a full scan."""
        self._probe_complete.add(name)
        return self

    def is_probe_complete(self, name: str) -> bool:
        return name in self._probe_complete


def facts_for_database(db, plan: Optional[Expr] = None) -> PlanFacts:
    """PlanFacts seeded from the stored values of named objects.

    Scans each named multiset once; those without duplicate occurrences
    become declared duplicate-free, so ``DE(Named(n))`` over them can be
    elided by the compiled engine.
    """
    from ..expr import Named

    facts = PlanFacts()
    mentioned: Optional[set] = None
    if plan is not None:
        mentioned = {node.name for node in plan.walk()
                     if isinstance(node, Named)}
    for name in db.names():
        if mentioned is not None and name not in mentioned:
            continue
        value = db.get(name)
        if (isinstance(value, MultiSet)
                and value.distinct_count() == len(value)):
            facts.declare_duplicate_free(Named(name))
    indexes = getattr(db, "indexes", None)
    if indexes is not None:
        for entry in indexes.definitions():
            if mentioned is None or entry["name"] in mentioned:
                facts.declare_probe_complete(entry["name"])
    return facts


#: Placeholder for future fact kinds (nonemptiness, known lengths, …).
FactTable = Dict[str, Any]
