"""Static analysis over algebra plans: inference, soundness, linting.

Three passes, layered on the base sort checker of
:mod:`repro.core.typecheck`:

* :mod:`~repro.core.analysis.inference` — inheritance-aware schema
  inference (DOM(S) substitutability, typed SET_APPLY narrowing,
  declared function signatures, method dispatch);
* :mod:`~repro.core.analysis.soundness` — the rewrite-soundness gate
  ("debug mode" for the optimizer) plus the offline rule sweep of
  :mod:`~repro.core.analysis.rulecheck`;
* :mod:`~repro.core.analysis.lint` — coded plan diagnostics (dead
  projections, redundant DE, dangling DEREF, dne-discard hazards,
  incomplete dispatch), fed by :mod:`~repro.core.analysis.nullflow`
  and :mod:`~repro.core.analysis.facts`;
* :mod:`~repro.core.analysis.absint` — a whole-plan abstract
  interpreter over cardinality, array-length, and value-range
  intervals; proves the L200-series diagnostics, extends
  :class:`PlanFacts` with engine/optimizer licenses, and powers the
  runtime sanitizer mode.

This package must stay importable without :mod:`repro.excess` —
the excess layer imports it, so anything excess-side is imported
lazily inside functions.
"""

from .absint import (AbsValue, Interval, PlanAnalysis, SanitizerError,
                     analyze)
from .diagnostics import (LINT_CODES, Diagnostic, Severity, SourceMap,
                          Span, sort_diagnostics)
from .facts import PlanFacts, duplicate_free, facts_for_database
from .inference import TypeInference, inference_for_database, substitutable
from .lint import Linter, lint
from .nullflow import (NullFlow, NullInfo, info_of_value,
                       nullflow_for_database)
from .rulecheck import RuleCheckReport, verify_all_rules
from .soundness import (RewriteSoundnessError, SoundnessChecker,
                        schemas_compatible)

__all__ = [
    "AbsValue", "Interval", "PlanAnalysis", "SanitizerError", "analyze",
    "Diagnostic", "Severity", "Span", "SourceMap", "LINT_CODES",
    "sort_diagnostics",
    "PlanFacts", "duplicate_free", "facts_for_database",
    "TypeInference", "inference_for_database", "substitutable",
    "Linter", "lint",
    "NullFlow", "NullInfo", "info_of_value", "nullflow_for_database",
    "RuleCheckReport", "verify_all_rules",
    "RewriteSoundnessError", "SoundnessChecker", "schemas_compatible",
]
