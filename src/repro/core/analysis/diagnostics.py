"""Diagnostic primitives for the plan linter.

A diagnostic is a coded finding about an algebra tree: a stable code
(``L101`` …), a severity, a message, the offending sub-expression, and
— when the tree came from the EXCESS translator — a source span
pointing back at the query text.  Codes are stable so tests, docs, and
downstream tooling can rely on them; the table lives in ``LINT_CODES``.

This module is deliberately leaf-level: no imports from the rest of
the analysis package and none from ``repro.excess`` (the translator
imports *us* to attach spans).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class Severity:
    """Diagnostic severities, orderable by :func:`rank`."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _RANK = {ERROR: 0, WARNING: 1, INFO: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._RANK.get(severity, 99)


class Span:
    """A position in EXCESS source text (1-based line/column)."""

    __slots__ = ("line", "column", "text")

    def __init__(self, line: int, column: int,
                 text: Optional[str] = None):
        self.line = line
        self.column = column
        self.text = text

    def describe(self) -> str:
        return "%d:%d" % (self.line, self.column)

    def __repr__(self) -> str:
        return "Span(%d, %d)" % (self.line, self.column)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Span) and self.line == other.line
                and self.column == other.column)

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class SourceMap:
    """expr → :class:`Span`, for trees built by the EXCESS translator.

    Algebra expressions use structural equality, so the map is keyed by
    object identity (two structurally equal subtrees can come from
    different places in the query text); the recorded expressions are
    kept alive so ids stay valid.
    """

    def __init__(self):
        self._spans: Dict[int, Span] = {}
        self._keep_alive: List[Any] = []

    def record(self, expr: Any, span: Span) -> None:
        """Associate *span* with *expr* and every sub-expression of it
        that has no span yet (inner nodes inherit the target's span)."""
        for node in expr.walk():
            if id(node) not in self._spans:
                self._spans[id(node)] = span
                self._keep_alive.append(node)

    def span_of(self, expr: Any) -> Optional[Span]:
        return self._spans.get(id(expr))

    def __len__(self) -> int:
        return len(self._spans)


class Diagnostic:
    """One linter finding."""

    __slots__ = ("code", "severity", "message", "expr", "span", "hint")

    def __init__(self, code: str, severity: str, message: str,
                 expr: Any = None, span: Optional[Span] = None,
                 hint: Optional[str] = None):
        self.code = code
        self.severity = severity
        self.message = message
        self.expr = expr
        self.span = span
        self.hint = hint

    def describe(self) -> str:
        where = " at %s" % self.span.describe() if self.span else ""
        text = "%s %s%s: %s" % (self.code, self.severity, where,
                                self.message)
        if self.hint:
            text += " (hint: %s)" % self.hint
        return text

    def __repr__(self) -> str:
        return "<Diagnostic %s>" % self.describe()


#: code → (default severity, one-line summary).  Stable public table.
LINT_CODES: Dict[str, Any] = {
    "L100": (Severity.ERROR,
             "plan does not typecheck (static sort/schema violation)"),
    "L101": (Severity.WARNING,
             "dead projected attribute: a π keeps fields never used "
             "downstream (pushdown opportunity)"),
    "L102": (Severity.INFO,
             "redundant DE: the input is provably duplicate-free"),
    "L103": (Severity.WARNING,
             "DEREF may encounter a dangling reference (object absent "
             "from the store)"),
    "L104": (Severity.INFO,
             "dne-discard hazard: a COMP predicate reads a value that "
             "may be dne, silently discarding the occurrence"),
    "L105": (Severity.ERROR,
             "incomplete switch-table dispatch: some receiver type has "
             "no implementation of the called method"),
    "L106": (Severity.INFO,
             "opaque function: no declared signature, result schema "
             "unknown to inference"),
    # L2xx — facts proven by the abstract interpreter (absint).
    "L200": (Severity.ERROR,
             "statically out-of-bounds subscript: ARR_EXTRACT position "
             "exceeds the proven array-length interval, the result is "
             "always dne"),
    "L201": (Severity.WARNING,
             "unsatisfiable σ: the predicate is provably false over "
             "every element the source can produce (subplan is empty)"),
    "L202": (Severity.INFO,
             "tautological σ: the predicate is provably true over every "
             "element the source can produce (filter is the identity)"),
    "L203": (Severity.WARNING,
             "statically-empty join input: one side of a × is provably "
             "empty, so the join produces nothing"),
    "L204": (Severity.WARNING,
             "statically-empty GRP input: the grouping source is "
             "provably empty, no groups can form"),
    "L205": (Severity.WARNING,
             "non-exhaustive type dispatch: the union of type filters "
             "over a shared source misses types in its C3 closure, so "
             "those occurrences are silently dropped"),
    "L206": (Severity.INFO,
             "catalog statistics contradict a proven cardinality "
             "interval (stale stats; re-run Statistics.from_database)"),
}


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Severity-major, code-minor stable ordering for display."""
    return sorted(diagnostics,
                  key=lambda d: (Severity.rank(d.severity), d.code))


def iter_codes() -> Iterator[str]:
    return iter(sorted(LINT_CODES))
