"""Inheritance-aware schema inference over algebra trees.

Extends the base :class:`~repro.core.typecheck.TypeChecker` with the
parts of the paper's static story the base checker leaves opaque:

* **DOM(S) substitutability** — ⊎ of a ``{Student}`` and an
  ``{Employee}`` infers ``{Person}`` (the least upper bound in the
  type hierarchy) instead of failing or forgetting everything;
* **typed SET_APPLY narrowing** — a type filter narrows the body's
  INPUT schema to the filtered types (that is the point of the
  ⊎-based method plans: each branch knows its receiver's type);
* **declared function signatures** — builtin and registered scalar
  functions, including signatures that need the argument *expressions*
  (``drop_field`` reads field names from Const args);
* **method dispatch** — a MethodCall's schema is the lub of the
  schemas of every implementation the receiver's static type can
  dispatch to, each checked against its defining type's schema.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set

from ..hierarchy import TypeHierarchy
from ..schema import SchemaCatalog, SchemaNode
from ..typecheck import (AlgebraTypeError, MaybeSchema, TypeChecker,
                         _element, _expect, database_schemas, is_unknown,
                         unknown_schema)


def substitutable(sub: MaybeSchema, sup: MaybeSchema,
                  hierarchy: Optional[TypeHierarchy] = None) -> bool:
    """DOM(S) substitutability: may a *sub*-typed value appear where
    *sup* is expected?  Width/depth subtyping on tuples, inheritance on
    named refs and tuple base types, componentwise on collections."""
    if is_unknown(sub) or is_unknown(sup):
        return True
    if sub.kind != sup.kind:
        return False
    if sub.kind == "val":
        return (sup.scalar_type is None or sub.scalar_type is None
                or sub.scalar_type == sup.scalar_type)
    if sub.kind == "ref":
        if sub.target is not None and sup.target is not None:
            if hierarchy and sub.target in hierarchy \
                    and sup.target in hierarchy:
                return hierarchy.is_subtype(sub.target, sup.target)
            return sub.target == sup.target
        return True
    if sub.kind == "tup":
        if (hierarchy and sub.base_name and sup.base_name
                and sub.base_name in hierarchy
                and sup.base_name in hierarchy):
            return hierarchy.is_subtype(sub.base_name, sup.base_name)
        sub_fields = set(sub.field_names)
        return all(name in sub_fields
                   and substitutable(sub.field(name), sup.field(name),
                                     hierarchy)
                   for name in sup.field_names)
    return substitutable(sub.children[0], sup.children[0], hierarchy)


class TypeInference(TypeChecker):
    """The full checker: base sort discipline + inheritance + dispatch."""

    def __init__(self, named_schemas: Optional[Dict[str, SchemaNode]] = None,
                 catalog: Optional[SchemaCatalog] = None,
                 signatures: Optional[Dict[str, Any]] = None,
                 hierarchy: Optional[TypeHierarchy] = None,
                 methods: Any = None):
        super().__init__(named_schemas, catalog, signatures)
        self.hierarchy = hierarchy
        self.methods = methods
        self._method_stack: Set[Any] = set()

    # -- least upper bounds under inheritance ---------------------------

    def _common_supertype(self, a: str, b: str) -> Optional[str]:
        """Most specific common supertype of two type names, or None."""
        if self.hierarchy is None or a not in self.hierarchy \
                or b not in self.hierarchy:
            return a if a == b else None
        for candidate in self.hierarchy.linearize(a):
            if self.hierarchy.is_subtype(b, candidate):
                return candidate
        return None

    def lub(self, a: MaybeSchema, b: MaybeSchema) -> MaybeSchema:
        """Least upper bound of two inferred schemas (None = unknown)."""
        if is_unknown(a):
            return b
        if is_unknown(b):
            return a
        if a.kind != b.kind:
            return None
        if a.kind == "val":
            if a.scalar_type == b.scalar_type:
                return a
            return SchemaNode.val()
        if a.kind == "ref":
            if a.target is not None and b.target is not None:
                if a.target == b.target:
                    return a
                common = self._common_supertype(a.target, b.target)
                return SchemaNode.ref_to(common) if common else None
            return a if a.target is None and b.target is None else None
        if a.kind == "tup":
            if a.base_name and a.base_name == b.base_name:
                return a
            common = None
            if a.base_name and b.base_name:
                common = self._common_supertype(a.base_name, b.base_name)
            if common is not None:
                return self._schema_of_type(common) or a
            shared = [n for n in a.field_names if n in set(b.field_names)]
            if not shared:
                return None
            return SchemaNode.tup(
                {name: (self.lub(a.field(name), b.field(name))
                        or unknown_schema()).clone()
                 for name in shared})
        wrap = SchemaNode.set_of if a.kind == "set" else SchemaNode.arr_of
        merged = self.lub(a.children[0], b.children[0])
        return wrap(merged.clone() if merged is not None
                    else unknown_schema())

    # -- typed SET_APPLY / ARR_APPLY narrowing --------------------------

    def _schema_of_type(self, type_name: str) -> MaybeSchema:
        if type_name in self.catalog:
            return self.catalog.resolve(type_name)
        return None

    def _narrow(self, element: MaybeSchema,
                type_filter: FrozenSet[str]) -> MaybeSchema:
        """The body's INPUT schema under a type filter: only elements
        whose exact type is in the filter reach the body."""
        if not type_filter:
            return element
        if element is not None and element.kind == "ref":
            narrowed = None
            for type_name in sorted(type_filter):
                narrowed = self.lub(narrowed, SchemaNode.ref_to(type_name))
            return narrowed if narrowed is not None else element
        narrowed = None
        for type_name in sorted(type_filter):
            schema = self._schema_of_type(type_name)
            if schema is None:
                return element  # unknown filtered type: keep what we had
            narrowed = self.lub(narrowed, schema)
        return narrowed if narrowed is not None else element

    # -- overridden node checks -----------------------------------------

    def _chk_AddUnion(self, expr, input_schema):
        left = _expect(self.check(expr.left, input_schema), "set", "⊎")
        right = _expect(self.check(expr.right, input_schema), "set", "⊎")
        if left is None or right is None:
            return left if right is None else right
        merged = self.lub(_element(left), _element(right))
        return SchemaNode.set_of(merged.clone() if merged is not None
                                 else unknown_schema())

    def _chk_SetApply(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "set",
                         "SET_APPLY")
        element = _element(source)
        type_filter = getattr(expr, "type_filter", None)
        if type_filter:
            element = self._narrow(element, type_filter)
        body = self.check(expr.body, element)
        return SchemaNode.set_of(body if body is not None
                                 else unknown_schema())

    def _chk_ArrApply(self, expr, input_schema):
        source = _expect(self.check(expr.source, input_schema), "arr",
                         "ARR_APPLY")
        element = _element(source)
        type_filter = getattr(expr, "type_filter", None)
        if type_filter:
            element = self._narrow(element, type_filter)
        body = self.check(expr.body, element)
        return SchemaNode.arr_of(body if body is not None
                                 else unknown_schema())

    def _chk_Func(self, expr, input_schema):
        arg_schemas = [self.check(arg, input_schema) for arg in expr.args]
        signature = self.signatures.get(expr.name)
        if callable(signature):
            if getattr(signature, "wants_exprs", False):
                return signature(arg_schemas, list(expr.args))
            return signature(arg_schemas)
        return signature

    def _chk_MethodCall(self, expr, input_schema):
        receiver = self.check(expr.receiver, input_schema)
        root = self._receiver_type(receiver)
        if root is None or self.methods is None:
            return None
        key = (root, expr.name, len(expr.args))
        if key in self._method_stack:
            return None  # recursive method: give up on a fixed point
        try:
            implementations = self.methods.implementations(root, expr.name)
        except Exception:
            return None  # unresolvable dispatch is the linter's finding
        result: MaybeSchema = None
        self._method_stack.add(key)
        try:
            for type_name, method in implementations.items():
                try:
                    body = method.instantiate(list(expr.args))
                except Exception:
                    return None
                self_schema = self._schema_of_type(type_name)
                try:
                    schema = self.check(body, self_schema)
                except AlgebraTypeError:
                    # A body ill-typed for a type that may never occur at
                    # run time must not fail the whole plan statically.
                    return None
                if schema is None:
                    return None
                result = schema if result is None else self.lub(result,
                                                                schema)
        finally:
            self._method_stack.discard(key)
        return result

    def _receiver_type(self, receiver: MaybeSchema) -> Optional[str]:
        """The static type name a MethodCall dispatches under, if known."""
        if receiver is None or self.hierarchy is None:
            return None
        if receiver.kind == "ref" and receiver.target in self.hierarchy:
            return receiver.target
        if receiver.kind == "tup" and receiver.base_name in self.hierarchy:
            return receiver.base_name
        return None


def inference_for_database(db) -> TypeInference:
    """A TypeInference wired to a database: named-object schemas, the
    type catalog, the hierarchy/method registry, and every declared
    signature source (builtins, the operator library, registered
    functions)."""
    named, catalog = database_schemas(db)
    signatures: Dict[str, Any] = {}
    # Lazy imports: repro.excess imports this package (span plumbing),
    # so pulling its modules in at import time would cycle.
    try:
        from ...excess.builtins import BUILTIN_SIGNATURES
        signatures.update(BUILTIN_SIGNATURES)
    except ImportError:  # pragma: no cover - excess layer always ships
        pass
    try:
        from ..operators.library import LIBRARY_SIGNATURES
        signatures.update(LIBRARY_SIGNATURES)
    except ImportError:  # pragma: no cover
        pass
    signatures.update(getattr(db, "function_signatures", None) or {})
    return TypeInference(named, catalog, signatures,
                         hierarchy=db.hierarchy,
                         methods=getattr(db, "methods", None))


__all__: List[str] = ["TypeInference", "inference_for_database",
                      "substitutable"]
