"""The plan linter: coded diagnostics over algebra trees.

Checks implemented (see ``diagnostics.LINT_CODES`` for the table):

* **L100** — the plan does not typecheck (inference raised).
* **L101** — dead projected attributes: a π keeps fields no downstream
  consumer reads; the hint names the smaller projection to push down.
* **L102** — redundant DE: the input is provably duplicate-free.
* **L103** — DEREF over a named collection that actually contains a
  dangling reference (checked against the store catalog).
* **L104** — dne-discard hazard: a COMP predicate reads a value that
  may be ``dne``, so the occurrence is silently dropped (§3 semantics —
  legal, but worth knowing when it can happen).
* **L105** — incomplete switch-table dispatch: some type at or below
  the receiver's static type has no implementation of the method.
* **L106** — opaque function: no declared signature, so inference sees
  an unknown result schema.

The L200 series is driven by the abstract interpreter
(:mod:`repro.core.analysis.absint`), which proves cardinality,
array-length, and value-range intervals over the whole plan:

* **L200** (error) — an ARR_EXTRACT subscript is statically out of
  bounds for the proven length interval; the result is always ``dne``.
* **L201** — a σ predicate is provably unsatisfiable; the subplan is
  statically empty.
* **L202** — a σ predicate is provably tautological; the filter is the
  identity.
* **L203 / L204** — a join (×) or GRP input is statically empty.
* **L205** — typed SET_APPLY branches over a shared source jointly
  miss types in the source's C3 closure, silently dropping those
  occurrences (only fired when ≥2 branches dispatch over the source —
  a single typed σ is a deliberate selection, not a dispatch).
* **L206** — externally supplied catalog statistics contradict a
  proven cardinality interval (stale stats).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from ..expr import Expr, Func, Input, Named
from ..methods import MethodCall
from ..operators.arrays import ArrApply, ArrDE
from ..operators.multiset import DE, SetApply
from ..operators.refs import Deref
from ..operators.tuples import Pi, TupExtract
from ..typecheck import AlgebraTypeError
from ..values import MultiSet, Ref
from .diagnostics import (LINT_CODES, Diagnostic, SourceMap,
                          sort_diagnostics)
from .facts import PlanFacts, facts_for_database
from .inference import TypeInference, inference_for_database
from .nullflow import NullFlow, nullflow_for_database


def _diag(code: str, message: str, expr: Optional[Expr] = None,
          span=None, hint: Optional[str] = None) -> Diagnostic:
    severity, _ = LINT_CODES[code]
    return Diagnostic(code, severity, message, expr=expr, span=span,
                      hint=hint)


def _used_fields(expr: Expr) -> Optional[Set[str]]:
    """INPUT fields *expr* reads, or None when it may use the whole
    input (so no projection can be proven dead)."""
    if isinstance(expr, Input):
        return None
    if isinstance(expr, TupExtract) and isinstance(expr.source, Input):
        return {expr.field}
    if isinstance(expr, Pi) and isinstance(expr.source, Input):
        return set(expr.names)
    used: Set[str] = set()
    for field in expr._fields:
        if field in expr._binding_fields:
            continue  # the body rebinds INPUT; only sources contribute
        value = getattr(expr, field)
        children = []
        if isinstance(value, Expr):
            children = [value]
        elif isinstance(value, (list, tuple)):
            children = [v for v in value if isinstance(v, Expr)]
        elif hasattr(value, "deep_exprs"):
            return None  # predicate operands: be conservative
        for child in children:
            child_used = _used_fields(child)
            if child_used is None:
                return None
            used |= child_used
    return used


class Linter:
    """Runs every lint pass over a plan; returns sorted diagnostics."""

    def __init__(self, database: Any = None,
                 inference: Optional[TypeInference] = None,
                 facts: Optional[PlanFacts] = None,
                 nullflow: Optional[NullFlow] = None,
                 source_map: Optional[SourceMap] = None,
                 statistics: Any = None):
        self.db = database
        if inference is None:
            inference = (inference_for_database(database)
                         if database is not None else TypeInference())
        self.inference = inference
        self.facts = facts
        self.nullflow = nullflow
        self.source_map = source_map or SourceMap()
        self.statistics = statistics

    def _span(self, expr: Expr):
        return self.source_map.span_of(expr)

    def lint(self, expr: Expr) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        self._check_types(expr, out)          # L100
        self._check_dead_projection(expr, out)  # L101
        self._check_redundant_de(expr, out)   # L102
        self._check_dangling_deref(expr, out)  # L103
        self._check_dne_discard(expr, out)    # L104
        self._check_dispatch(expr, out)       # L105
        self._check_opaque_funcs(expr, out)   # L106
        self._check_absint(expr, out)         # L200-L204, L206
        self._check_exhaustive_dispatch(expr, out)  # L205
        return sort_diagnostics(out)

    # -- L100: static typing ----------------------------------------------

    def _check_types(self, expr: Expr, out: List[Diagnostic]) -> None:
        try:
            self.inference.check(expr)
        except AlgebraTypeError as error:
            detail = str(error)
            if error.operator:
                detail += " [operator=%s expected=%s got=%s]" % (
                    error.operator, error.expected, error.got)
            out.append(_diag("L100", detail, expr=error.expr or expr,
                             span=self._span(error.expr or expr)))

    # -- L101: dead projected attributes ----------------------------------

    def _check_dead_projection(self, expr: Expr,
                               out: List[Diagnostic]) -> None:
        for node in expr.walk():
            if isinstance(node, (SetApply, ArrApply)) \
                    and isinstance(node.source, (SetApply, ArrApply)):
                inner = node.source
                if isinstance(inner.body, Pi) \
                        and isinstance(inner.body.source, Input):
                    kept = set(inner.body.names)
                    used = _used_fields(node.body)
                    if used is not None and used < kept:
                        dead = sorted(kept - used)
                        out.append(_diag(
                            "L101",
                            "π keeps %s but only %s %s used downstream"
                            % (", ".join(sorted(kept)),
                               ", ".join(sorted(used)) or "none",
                               "is" if len(used) == 1 else "are"),
                            expr=inner.body, span=self._span(inner.body),
                            hint="project only [%s] (dead: %s)"
                            % (", ".join(sorted(used)),
                               ", ".join(dead))))
            if isinstance(node, TupExtract) \
                    and isinstance(node.source, Pi) \
                    and len(node.source.names) > 1 \
                    and node.field in node.source.names:
                dead = sorted(set(node.source.names) - {node.field})
                out.append(_diag(
                    "L101",
                    "π keeps %s but only %r is extracted"
                    % (", ".join(node.source.names), node.field),
                    expr=node.source, span=self._span(node.source),
                    hint="project only [%s] (dead: %s)"
                    % (node.field, ", ".join(dead))))

    # -- L102: redundant DE -------------------------------------------------

    def _check_redundant_de(self, expr: Expr,
                            out: List[Diagnostic]) -> None:
        facts = self.facts
        if facts is None:
            facts = (facts_for_database(self.db, expr)
                     if self.db is not None else PlanFacts())
        for node in expr.walk():
            if isinstance(node, (DE, ArrDE)) \
                    and facts.is_duplicate_free(node.source):
                out.append(_diag(
                    "L102",
                    "DE over %s, which is provably duplicate-free"
                    % node.source.describe(),
                    expr=node, span=self._span(node),
                    hint="drop the DE (or let the compiled engine elide "
                         "it via plan facts)"))

    # -- L103: dangling DEREF -----------------------------------------------

    def _dangling_named(self) -> Set[str]:
        """Names of stored collections containing a dangling ref."""
        if self.db is None:
            return set()
        store = self.db.store
        dangling: Set[str] = set()
        for name in self.db.names():
            value = self.db.get(name)
            if isinstance(value, MultiSet):
                for element, _count in value.items():
                    if isinstance(element, Ref) \
                            and element.oid not in store:
                        dangling.add(name)
                        break
        return dangling

    def _check_dangling_deref(self, expr: Expr,
                              out: List[Diagnostic]) -> None:
        dangling = self._dangling_named()
        if not dangling:
            return
        for node in expr.walk():
            if not isinstance(node, (SetApply, ArrApply)):
                continue
            has_deref = any(isinstance(sub, Deref) and sub.source.uses_input()
                            for sub in node.body.walk())
            if not has_deref:
                continue
            sources = {sub.name for sub in node.source.walk()
                       if isinstance(sub, Named)}
            hit = sorted(sources & dangling)
            if hit:
                out.append(_diag(
                    "L103",
                    "DEREF over %s, which contains dangling reference(s); "
                    "such occurrences dereference to dne and are dropped"
                    % ", ".join(hit),
                    expr=node, span=self._span(node)))

    # -- L104: dne-discard hazards in predicates ----------------------------

    def _check_dne_discard(self, expr: Expr,
                           out: List[Diagnostic]) -> None:
        hazards: List[Any] = []

        def observer(comp, operand, info):
            if info.may_dne():
                hazards.append((comp, operand))

        if self.nullflow is not None:
            flow = self.nullflow
            flow.observer = observer
        elif self.db is not None:
            flow = nullflow_for_database(self.db, observer)
        else:
            flow = NullFlow(observer=observer)
        flow.check(expr)
        seen = set()
        for comp, operand in hazards:
            key = (id(comp), operand.describe())
            if key in seen:
                continue
            seen.add(key)
            out.append(_diag(
                "L104",
                "COMP predicate reads %s, which may be dne; the "
                "occurrence is then silently discarded"
                % operand.describe(),
                expr=comp, span=self._span(comp)))

    # -- L105: incomplete switch-table dispatch -----------------------------

    def _check_dispatch(self, expr: Expr, out: List[Diagnostic]) -> None:
        if self.db is None:
            return
        hierarchy = self.db.hierarchy
        methods = self.db.methods
        for node in expr.walk():
            if not isinstance(node, (SetApply, ArrApply)):
                continue
            calls = [sub for sub in node.body.walk()
                     if isinstance(sub, MethodCall)
                     and isinstance(sub.receiver, Input)]
            if not calls:
                continue
            try:
                source_schema = self.inference.check(node.source)
            except AlgebraTypeError:
                continue
            element = None
            if source_schema is not None and source_schema.children:
                element = source_schema.children[0]
            root = self.inference._receiver_type(element)
            if root is None:
                continue
            candidates = hierarchy.descendants_or_self(root)
            type_filter = getattr(node, "type_filter", None)
            if type_filter:
                filtered = set()
                for t in type_filter:
                    if t in hierarchy:
                        filtered |= hierarchy.descendants_or_self(t)
                candidates &= filtered
            for call in calls:
                missing = []
                for t in sorted(candidates):
                    try:
                        methods.resolve(t, call.name)
                    except Exception:
                        missing.append(t)
                if missing:
                    out.append(_diag(
                        "L105",
                        "method %r is not implemented for receiver "
                        "type(s) %s (dispatch root %s)"
                        % (call.name, ", ".join(missing), root),
                        expr=call, span=self._span(call)))

    # -- L200-L204, L206: abstract-interpretation findings ------------------

    _ABSINT_CODES = {
        "oob_subscript": "L200",
        "unsat_sigma": "L201",
        "taut_sigma": "L202",
        "empty_join_input": "L203",
        "empty_grp_input": "L204",
        "stats_contradiction": "L206",
    }

    def _check_absint(self, expr: Expr, out: List[Diagnostic]) -> None:
        from .absint import analyze
        analysis = analyze(expr, database=self.db,
                           statistics=self.statistics)
        for finding in analysis.findings:
            code = self._ABSINT_CODES.get(finding.kind)
            if code is None:
                continue
            out.append(_diag(code, finding.message, expr=finding.expr,
                             span=self._span(finding.expr)))

    # -- L205: non-exhaustive type dispatch over a C3 closure ----------------

    def _check_exhaustive_dispatch(self, expr: Expr,
                                   out: List[Diagnostic]) -> None:
        if self.db is None:
            return
        hierarchy = self.db.hierarchy
        # Group typed applies by structurally-equal source: a dispatch
        # is several typed branches over one source (Figure 5 shape);
        # one typed σ alone is a deliberate selection, not a dispatch.
        groups: List[List[Any]] = []
        for node in expr.walk():
            if not isinstance(node, (SetApply, ArrApply)) \
                    or not node.type_filter:
                continue
            for group in groups:
                if group[0].source == node.source:
                    group.append(node)
                    break
            else:
                groups.append([node])
        for group in groups:
            if len(group) < 2:
                continue
            covered: Set[str] = set()
            for node in group:
                for t in node.type_filter:
                    if t in hierarchy:
                        covered |= hierarchy.descendants_or_self(t)
                    else:
                        covered.add(t)
            try:
                source_schema = self.inference.check(group[0].source)
            except AlgebraTypeError:
                continue
            element = None
            if source_schema is not None and source_schema.children:
                element = source_schema.children[0]
            root = self.inference._receiver_type(element)
            if root is not None and root in hierarchy:
                closure = hierarchy.descendants_or_self(root)
                origin = "the C3 closure of %s" % root
            else:
                # Schema carries no type name (anonymous tuple schema):
                # fall back to the exact types actually stored in a
                # Named extent — occurrences of any uncovered type are
                # silently dropped by every branch.
                closure = self._stored_exact_types(group[0].source)
                origin = "%s actually contains" % group[0].source.describe()
                if closure is None:
                    continue
            missing = sorted(closure - covered)
            if missing:
                out.append(_diag(
                    "L205",
                    "typed dispatch over %s covers %s but %s %s too; "
                    "those occurrences are silently dropped"
                    % (group[0].source.describe(),
                       ", ".join(sorted(covered)) or "nothing", origin,
                       ", ".join(missing)),
                    expr=group[0], span=self._span(group[0]),
                    hint="add branches (or an explicit catch-all type "
                         "filter) for: %s" % ", ".join(missing)))

    def _stored_exact_types(self, source: Expr) -> Optional[Set[str]]:
        """The exact type names present in a Named stored multiset (via
        tuple tags and the store's ref catalog), or None when the source
        isn't a stored extent we can enumerate."""
        if not isinstance(source, Named) or self.db is None:
            return None
        try:
            stored = self.db.get(source.name)
        except KeyError:
            return None
        if not isinstance(stored, MultiSet):
            return None
        out: Set[str] = set()
        store = getattr(self.db, "store", None)
        for element in stored.elements():
            name = getattr(element, "type_name", None)
            if name is None and isinstance(element, Ref) \
                    and store is not None:
                try:
                    name = store.exact_type(element.oid)
                except Exception:
                    name = None
            if name is None:
                return None  # untyped element: nothing to dispatch on
            out.add(name)
        return out

    # -- L106: opaque functions ---------------------------------------------

    def _check_opaque_funcs(self, expr: Expr,
                            out: List[Diagnostic]) -> None:
        reported: Set[str] = set()
        for node in expr.walk():
            if isinstance(node, Func) and node.name not in reported \
                    and self.inference.signatures.get(node.name) is None:
                reported.add(node.name)
                out.append(_diag(
                    "L106",
                    "function %r has no declared signature; its result "
                    "schema is opaque to inference" % node.name,
                    expr=node, span=self._span(node),
                    hint="register it with db.register_function(name, "
                         "fn, signature=...)"))


def lint(expr: Expr, database: Any = None,
         source_map: Optional[SourceMap] = None,
         statistics: Any = None) -> List[Diagnostic]:
    """One-shot convenience: lint *expr* against *database*."""
    return Linter(database, source_map=source_map,
                  statistics=statistics).lint(expr)


__all__ = ["Linter", "lint"]
