"""The rewrite-soundness gate: every rewrite must preserve the schema.

Each of the paper's transformation rules is a claimed *equivalence*,
so in particular it must be schema-preserving: the inferred schema of
the rewritten tree must be compatible with the original's.  This
module provides the check as a callable suitable for the ``verifier``
hook on :class:`~repro.core.transform.engine.RewriteEngine` and
:class:`~repro.core.optimizer.Optimizer` (the "debug mode"), plus the
compatibility relation itself.

Compatibility is *not* :meth:`SchemaNode.structurally_equal`: that
comparison is field-order-sensitive for tuple nodes, but run-time
tuples are named records whose equality ignores field order (that is
what makes TUP_CAT commutative, Appendix rule 23).  Rules 3, 23 and 24
legitimately reorder tuple fields, so the gate matches tuple fields by
name.  Unknown pieces (``None`` or the inference placeholder) unify
with anything — a rewrite may lose or gain static knowledge, it just
may not produce a *contradicting* schema.
"""

from __future__ import annotations

from typing import Any, Optional

from ..schema import SchemaNode
from ..typecheck import AlgebraTypeError, TypeChecker, is_unknown


def schemas_compatible(a: Optional[SchemaNode],
                       b: Optional[SchemaNode]) -> bool:
    """True when two inferred schemas can describe the same values.

    Unknowns unify with everything; tuple fields match by name
    (order-insensitive); ref targets must agree when both are named.
    """
    if is_unknown(a) or is_unknown(b):
        return True
    if a.kind != b.kind:
        return False
    if a.kind == "val":
        return (a.scalar_type is None or b.scalar_type is None
                or a.scalar_type == b.scalar_type)
    if a.kind == "ref":
        if a.target is not None and b.target is not None:
            return a.target == b.target
        if a.target is None and b.target is None:
            return schemas_compatible(a.children[0], b.children[0])
        return True  # named vs. inline: can't compare without a catalog
    if a.kind == "tup":
        if set(a.field_names) != set(b.field_names):
            return False
        return all(schemas_compatible(a.field(name), b.field(name))
                   for name in a.field_names)
    # set / arr: one component each.
    return schemas_compatible(a.children[0], b.children[0])


class RewriteSoundnessError(AssertionError):
    """A rewrite step changed the inferred schema (or broke typing)."""

    def __init__(self, rule: Any, before: Any, after: Any,
                 before_schema: Optional[SchemaNode],
                 after_schema: Optional[SchemaNode],
                 message: str):
        self.rule = rule
        self.before = before
        self.after = after
        self.before_schema = before_schema
        self.after_schema = after_schema
        rule_name = getattr(rule, "name", str(rule))
        super().__init__("rule %r unsound: %s\n  before: %s\n  after:  %s"
                         % (rule_name, message, before.describe(),
                            after.describe()))


class SoundnessChecker:
    """Callable ``(rule, before, after)`` verifier for rewrite hooks.

    Skips steps whose *input* tree does not typecheck (nothing to
    preserve); raises :class:`RewriteSoundnessError` when a well-typed
    tree is rewritten into an ill-typed one or into a different schema.
    """

    def __init__(self, checker: Optional[TypeChecker] = None,
                 input_schema: Optional[SchemaNode] = None):
        self.checker = checker or TypeChecker()
        self.input_schema = input_schema
        self.checked = 0
        self.skipped = 0

    def __call__(self, rule: Any, before: Any, after: Any) -> None:
        try:
            before_schema = self.checker.check(before, self.input_schema)
        except AlgebraTypeError:
            self.skipped += 1  # ill-typed input: rule owes it nothing
            return
        try:
            after_schema = self.checker.check(after, self.input_schema)
        except AlgebraTypeError as error:
            raise RewriteSoundnessError(
                rule, before, after, before_schema, None,
                "rewrite produced an ill-typed tree: %s" % error)
        self.checked += 1
        if not schemas_compatible(before_schema, after_schema):
            raise RewriteSoundnessError(
                rule, before, after, before_schema, after_schema,
                "schema changed from %s to %s"
                % (before_schema.describe() if before_schema else "?",
                   after_schema.describe() if after_schema else "?"))
