"""Tokenizer shared by the EXTRA DDL and EXCESS DML parsers.

Both languages (Section 2) are QUEL-flavoured: identifiers, dotted path
expressions, numbers, quoted strings, brackets/braces/parens, and a
small operator set.  Keywords are not reserved at the lexer level — the
parsers decide (EXCESS lets ``name`` be both a keyword-free identifier
and an attribute).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional


class ParseError(ValueError):
    """A lexical or syntactic error, with position information."""

    def __init__(self, message: str, line: int = None, column: int = None):
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column)
        super().__init__(message)
        self.line = line
        self.column = column


class Token(NamedTuple):
    kind: str          # IDENT, INT, FLOAT, STRING, OP, EOF
    value: str
    line: int
    column: int

    def is_word(self, *words: str) -> bool:
        """Case-insensitive keyword test on an identifier token."""
        return self.kind == "IDENT" and self.value.lower() in words


#: Multi-character operators, longest first.
_OPERATORS = ["..", "!=", "<=", ">=", ":=", "(", ")", "{", "}", "[", "]",
              ":", ",", ".", "=", "<", ">", ";", "+", "-", "*", "/"]


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, raising :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#" or source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise ParseError("unterminated string", line, column)
                j += 1
            if j >= n:
                raise ParseError("unterminated string", line, column)
            tokens.append(Token("STRING", source[i + 1:j], line, column))
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            # A float needs "digit . digit"; a bare ".." is a range op.
            if (j < n - 1 and source[j] == "."
                    and source[j + 1].isdigit()):
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
                tokens.append(Token("FLOAT", source[i:j], line, column))
            else:
                tokens.append(Token("INT", source[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", source[i:j], line, column))
            column += j - i
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                column += len(op)
                i += len(op)
                break
        else:
            raise ParseError("unexpected character %r" % ch, line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


class Lexer:
    """A token cursor with the usual peek/expect helpers."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self.position += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def accept_op(self, op: str) -> bool:
        if self.peek().kind == "OP" and self.peek().value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if token.kind != "OP" or token.value != op:
            raise ParseError("expected %r, found %r" % (op, token.value or "end of input"),
                             token.line, token.column)
        return self.advance()

    def accept_word(self, *words: str) -> Optional[Token]:
        if self.peek().is_word(*words):
            return self.advance()
        return None

    def expect_word(self, *words: str) -> Token:
        token = self.peek()
        if not token.is_word(*words):
            raise ParseError(
                "expected %s, found %r" % (" or ".join(words),
                                           token.value or "end of input"),
                token.line, token.column)
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "IDENT":
            raise ParseError("expected an identifier, found %r"
                             % (token.value or "end of input"),
                             token.line, token.column)
        return self.advance()
