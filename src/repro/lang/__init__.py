"""Shared lexical analysis for the EXTRA DDL and the EXCESS DML."""

from .lexer import Lexer, ParseError, Token, tokenize

__all__ = ["Lexer", "ParseError", "Token", "tokenize"]
