"""The write-ahead log: binary-framed, checksummed redo records.

The paper's system inherited durability from the EXODUS storage
manager; this module reproduces the shape of that contract for our
dictionary-backed store.  A log file is a fixed 8-byte header followed
by a sequence of framed records::

    +----------+----------+------------------+
    | len: u32 | crc: u32 | payload (len B)  |
    +----------+----------+------------------+

both integers little-endian; the CRC is ``zlib.crc32`` of the payload
bytes.  Payloads are compact JSON documents (the same tagged value
encoding :mod:`repro.core.serialize` uses for snapshots), so a log is
self-describing while the *framing* stays binary and torn tails are
detectable without trusting the payload syntax.

Torn-tail discipline: a reader accepts the longest prefix of records
whose frames are complete and whose checksums match, and ignores
everything after the first damaged frame.  Opening a log for append
truncates that damage away first, so a crashed writer can never leave
garbage in the middle of a live log.

Record *content* (operation kinds, transaction framing) is defined by
:mod:`repro.storage.txn`; this module only knows about frames.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import WAL_APPENDED_BYTES_TOTAL, WAL_FSYNCS_TOTAL

MAGIC = b"XWAL"
FORMAT_VERSION = 1
HEADER = MAGIC + struct.pack("<I", FORMAT_VERSION)
HEADER_SIZE = len(HEADER)
FRAME = struct.Struct("<II")

#: Upper bound on a single record's payload; a frame whose declared
#: length exceeds this is treated as tail damage, not honored.
MAX_RECORD_SIZE = 64 * 1024 * 1024


class WalError(ValueError):
    """Raised for unusable log files (bad header) or oversized records."""


def encode_record(payload: Dict[str, Any]) -> bytes:
    """One framed record: length, checksum, canonical-JSON payload."""
    data = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(data) > MAX_RECORD_SIZE:
        raise WalError("record of %d bytes exceeds the frame limit"
                       % len(data))
    return FRAME.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data


def scan_bytes(blob: bytes) -> Tuple[List[Tuple[int, Dict[str, Any]]], int]:
    """Parse *blob* as a log image.

    Returns ``(records, valid_end)`` where *records* is a list of
    ``(end_offset, payload)`` pairs for every intact record, in order,
    and *valid_end* is the offset just past the last intact record —
    the truncation point an appender must restore before writing.  A
    missing or damaged header yields ``([], 0)``.
    """
    if len(blob) < HEADER_SIZE or blob[:HEADER_SIZE] != HEADER:
        return [], 0
    records: List[Tuple[int, Dict[str, Any]]] = []
    offset = HEADER_SIZE
    while True:
        if offset + FRAME.size > len(blob):
            break
        length, crc = FRAME.unpack_from(blob, offset)
        start = offset + FRAME.size
        end = start + length
        if length > MAX_RECORD_SIZE or end > len(blob):
            break  # torn frame
        data = blob[start:end]
        if zlib.crc32(data) & 0xFFFFFFFF != crc:
            break  # corrupt payload: stop at the damage
        try:
            payload = json.loads(data.decode("utf-8"))
        except ValueError:
            break
        records.append((end, payload))
        offset = end
    return records, offset


def scan(path: str) -> Tuple[List[Tuple[int, Dict[str, Any]]], int]:
    """:func:`scan_bytes` over a file; a missing file is an empty log."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return [], 0
    return scan_bytes(blob)


def read_records(path: str) -> List[Dict[str, Any]]:
    """Every intact record payload in the log at *path*, in order."""
    return [payload for _, payload in scan(path)[0]]


def record_boundaries(path: str) -> List[int]:
    """Offsets of every record boundary: the header end plus the end of
    each intact record.  Crash-sweep harnesses truncate to each of
    these in turn."""
    records, _ = scan(path)
    return [HEADER_SIZE] + [end for end, _ in records]


class WriteAheadLog:
    """An append-only log open for writing.

    Parameters
    ----------
    path:
        Log file location; created (with a fresh header) when absent.
        An existing file is scanned and any torn tail truncated away
        before the first append.
    sync:
        When true (the default), every :meth:`append_batch` ends with
        an ``fsync`` — the durability point of a commit.  Benchmarks
        and bulk tests may turn it off.
    """

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self.sync = sync
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            blob = b""
        _, valid_end = scan_bytes(blob)
        if valid_end == 0:
            if blob and blob[:HEADER_SIZE] == HEADER[:len(blob)]:
                pass  # a short header fragment: rewrite below
            elif blob and not blob.startswith(MAGIC[:1]):
                raise WalError("%s exists but is not a WAL file" % path)
            with open(path, "wb") as handle:
                handle.write(HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            valid_end = HEADER_SIZE
        self._fh = open(path, "r+b")
        self._fh.truncate(valid_end)
        self._fh.seek(valid_end)
        self._end = valid_end

    def tell(self) -> int:
        """The current end offset (next record lands here)."""
        return self._end

    def append(self, payload: Dict[str, Any]) -> int:
        """Append one record; returns its end offset."""
        return self.append_batch([payload])

    def append_batch(self, payloads: List[Dict[str, Any]]) -> int:
        """Append records as one contiguous write, then sync once.

        A commit writes its whole ``begin … ops … commit`` group this
        way, so the single fsync at the end is the commit point.
        """
        blob = b"".join(encode_record(p) for p in payloads)
        self._fh.write(blob)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
            WAL_FSYNCS_TOTAL.inc()
        WAL_APPENDED_BYTES_TOTAL.inc(len(blob))
        self._end += len(blob)
        return self._end

    def sync_now(self) -> None:
        """Flush and fsync regardless of the ``sync`` flag.

        The durability point of a *cross-transaction* group commit: a
        batch of transactions written with per-commit syncs suspended
        (see :meth:`group`) becomes durable here, with one fsync.
        """
        self._fh.flush()
        os.fsync(self._fh.fileno())
        WAL_FSYNCS_TOTAL.inc()

    def group(self) -> "_WalGroup":
        """Context manager suspending per-append fsyncs for its body,
        then issuing a single :meth:`sync_now` covering everything
        appended — the server's cross-connection group commit::

            with wal.group():
                manager.commit()   # txn A (no fsync yet)
                manager.commit()   # txn B (no fsync yet)
            # one fsync made both durable

        Nothing appended → no fsync.  An exception mid-group still
        syncs whatever reached the log (those transactions committed).
        """
        return _WalGroup(self)

    def truncate(self) -> None:
        """Reset the log to just its header (checkpoint's final step)."""
        self._fh.truncate(HEADER_SIZE)
        self._fh.seek(HEADER_SIZE)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._end = HEADER_SIZE

    def records(self) -> List[Dict[str, Any]]:
        return read_records(self.path)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        return "WriteAheadLog(%r, %d bytes)" % (self.path, self._end)


class _WalGroup:
    """See :meth:`WriteAheadLog.group`."""

    __slots__ = ("_wal", "_was_sync", "_start")

    def __init__(self, wal: WriteAheadLog):
        self._wal = wal

    def __enter__(self) -> WriteAheadLog:
        self._was_sync = self._wal.sync
        self._start = self._wal.tell()
        self._wal.sync = False
        return self._wal

    def __exit__(self, *exc: Any) -> None:
        self._wal.sync = self._was_sync
        if self._was_sync and self._wal.tell() != self._start:
            self._wal.sync_now()
