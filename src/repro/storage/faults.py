"""Deterministic fault injection for the WAL + recovery path.

The subsystem's durability claim is sharp: *recovery restores exactly
the committed prefix* — objects, exact types, named objects, schema,
and OID generator counters.  This harness proves it by brute force:

1. run a workload (a plain list of operation tuples) against a live
   database with an attached WAL, capturing a canonical state document
   after **every commit** (the "shadow" states);
2. enumerate every record boundary of the resulting log and, for each,
   simulate a crash by copying exactly that prefix to a fresh file;
   also simulate **torn tails** (a prefix cut mid-record) and
   **partial fsyncs** (a valid prefix followed by garbage bytes);
3. recover each truncated log into a fresh database and require its
   canonical state to equal the shadow state of the last transaction
   whose commit record survived in full.

Everything is seeded and single-threaded, so a failure reproduces
exactly.  ``python -m repro.storage.faults`` runs the default sweep
(the ``make crashtest`` target); it exits non-zero on any mismatch.

Workload operations (tuples)::

    ("begin",)                 ("commit",)              ("abort",)
    ("insert", type, value)    ("update", i, value)     ("delete", i)
    ("name", name, value)      ("drop", name)
    ("savepoint", sp)          ("rollback", sp)
    ("ddl_type", name)

``("update", i, value)`` / ``("delete", i)`` address the *i*-th OID
inserted so far (modulo), so random workloads stay self-consistent.
"""

from __future__ import annotations

import json
import os
import random
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from .persist import database_to_json
from .store import Database
from .txn import TransactionManager, TxnError, replay_log
from .wal import HEADER_SIZE, WriteAheadLog, read_records, scan


def canonical_state(db: Database) -> str:
    """A comparable rendering of everything durability must preserve.

    Two normalizations keep the comparison honest: multiset ``counts``
    lists are order-insensitive, and hierarchy entries are restricted
    to types something durable refers to — a bare root stub
    auto-registered by an *aborted* insert is a live-process artifact
    (schema registration is not transactional), not recoverable state.
    """
    doc = _normalize(database_to_json(db))
    referenced = {entry["type"] for entry in doc["objects"]}
    referenced.update(entry["name"] for entry in doc["types"])
    referenced.update(parent for entry in doc["types"]
                      for parent in entry["parents"])
    referenced.add("Object")
    # Sorted by name: topological order reflects live registration
    # order, which an aborted first-touch legitimately perturbs.
    doc["hierarchy"] = sorted(
        (entry for entry in doc["hierarchy"] if entry["name"] in referenced),
        key=lambda entry: entry["name"])
    return json.dumps(doc, sort_keys=True)


def _normalize(doc: Any) -> Any:
    """Sort multiset ``counts`` lists so insertion order (which honestly
    differs between a live run and a replay) can't fail a comparison."""
    if isinstance(doc, dict):
        out = {}
        for key, value in doc.items():
            value = _normalize(value)
            if key == "counts" and isinstance(value, list):
                value = sorted(value, key=lambda pair: json.dumps(
                    pair, sort_keys=True))
            out[key] = value
        return out
    if isinstance(doc, list):
        return [_normalize(item) for item in doc]
    return doc


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def random_workload(rng: random.Random, n_ops: int = 60) -> List[Tuple]:
    """A random but self-consistent mix of transactions and autocommit
    operations, with occasional aborts and savepoint rollbacks."""
    from ..core.values import Tup
    ops: List[Tuple] = []
    in_txn = False
    savepoints: List[str] = []
    inserted = 0
    for i in range(n_ops):
        roll = rng.random()
        if in_txn and roll < 0.12:
            ops.append(("commit",))
            in_txn, savepoints = False, []
        elif in_txn and roll < 0.18:
            ops.append(("abort",))
            in_txn, savepoints = False, []
        elif in_txn and roll < 0.24 and savepoints and rng.random() < 0.5:
            ops.append(("rollback", rng.choice(savepoints)))
        elif in_txn and roll < 0.24:
            name = "sp%d" % i
            ops.append(("savepoint", name))
            savepoints.append(name)
        elif not in_txn and roll < 0.25:
            ops.append(("begin",))
            in_txn = True
        else:
            kind = rng.random()
            if kind < 0.45 or inserted == 0:
                ops.append(("insert", rng.choice(["Part", "Widget", "Gear"]),
                            Tup(serial=i, lot=rng.randrange(5))))
                inserted += 1
            elif kind < 0.70:
                ops.append(("update", rng.randrange(inserted),
                            Tup(serial=i, lot=-1)))
            elif kind < 0.80:
                ops.append(("delete", rng.randrange(inserted)))
            elif kind < 0.92:
                ops.append(("name", rng.choice(["Bin", "Shelf", "Dock"]),
                            Tup(tag=i)))
            elif kind < 0.96 or in_txn:
                # DDL stays outside transactions here: schema changes
                # are durable-at-execution but not undone by abort, so
                # an aborted-transaction DDL would (correctly) diverge
                # the live schema from the recoverable one.
                ops.append(("drop", rng.choice(["Bin", "Shelf", "Dock"])))
            else:
                ops.append(("ddl_type", "T%d" % i))
    if in_txn:
        ops.append(("commit",))
    return ops


def run_workload(db: Database, manager: TransactionManager,
                 ops: List[Tuple]) -> List[str]:
    """Execute *ops*; returns the canonical shadow state after commit
    #0 (the initial state) through commit #N, in order.  Autocommit
    operations count as their own commits, exactly as they reach the
    log."""
    shadows = [canonical_state(db)]
    oids: List[Any] = []

    def on_commit():
        shadows.append(canonical_state(db))

    for op in ops:
        kind = op[0]
        in_txn = manager.active is not None
        if kind == "begin":
            manager.begin()
        elif kind == "commit":
            wrote = bool(manager.active.records)
            manager.commit()
            if wrote:  # an empty commit leaves no record on disk
                on_commit()
        elif kind == "abort":
            manager.abort()
        elif kind == "savepoint":
            manager.savepoint(op[1])
        elif kind == "rollback":
            try:
                manager.rollback_to(op[1])
            except TxnError:
                pass  # savepoint rolled away earlier; harmless
        elif kind == "insert":
            oids.append(db.store.insert(op[2], op[1]).oid)
            if not in_txn:
                on_commit()
        elif kind == "update":
            oid = oids[op[1] % len(oids)]
            if oid in db.store:
                db.store.update(oid, op[2])
                if not in_txn:
                    on_commit()
        elif kind == "delete":
            oid = oids[op[1] % len(oids)]
            if oid in db.store:
                db.store.delete(oid)
                if not in_txn:
                    on_commit()
        elif kind == "name":
            db.create(op[1], op[2])
            if not in_txn:
                on_commit()
        elif kind == "drop":
            if op[1] in db:
                db.drop(op[1])
                if not in_txn:
                    on_commit()
        elif kind == "ddl_type":
            types = getattr(db, "types", None)
            if types is not None and op[1] not in types:
                from ..extra.ddl import parse_type_expr
                from ..lang import Lexer
                types.define(op[1],
                             [("tag", parse_type_expr(Lexer("integer"),
                                                      types))], ())
                if not in_txn:
                    on_commit()
        else:
            raise ValueError("unknown workload op %r" % (kind,))
    return shadows


# ---------------------------------------------------------------------------
# The crash sweep
# ---------------------------------------------------------------------------

class FaultReport:
    """Outcome of one sweep: how many crash points ran, which failed."""

    def __init__(self):
        self.points = 0
        self.failures: List[Dict[str, Any]] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, label: str, offset: int, expected_commits: int,
               matched: bool) -> None:
        self.points += 1
        if not matched:
            self.failures.append({"label": label, "offset": offset,
                                  "expected_commits": expected_commits})

    def __repr__(self) -> str:
        return "<FaultReport %d point(s), %d failure(s)>" % (
            self.points, len(self.failures))


def _recovered_state(log_bytes: bytes, workdir: str) -> str:
    crash_path = os.path.join(workdir, "crash.log")
    with open(crash_path, "wb") as handle:
        handle.write(log_bytes)
    db = Database()
    from ..extra.ddl import ensure_type_system
    ensure_type_system(db)
    replay_log(db, read_records(crash_path))
    return canonical_state(db)


def crash_sweep(ops: List[Tuple], workdir: Optional[str] = None,
                torn_tails: bool = True, corrupt_tails: bool = True,
                report: Optional[FaultReport] = None) -> FaultReport:
    """Run *ops* with a WAL, then crash-and-recover at every record
    boundary (plus torn and corrupted tails) and verify each recovery
    equals the committed-prefix shadow state."""
    report = report or FaultReport()
    owns_dir = workdir is None
    if owns_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-crash-")
        workdir = tmp.name
    try:
        wal_path = os.path.join(workdir, "wal.log")
        if os.path.exists(wal_path):
            os.remove(wal_path)
        db = Database()
        from ..extra.ddl import ensure_type_system
        ensure_type_system(db)
        wal = WriteAheadLog(wal_path, sync=False)
        manager = TransactionManager(db, wal=wal)
        shadows = run_workload(db, manager, ops)
        wal.close()

        records, valid_end = scan(wal_path)
        with open(wal_path, "rb") as handle:
            blob = handle.read()
        # Commit count fully contained within each boundary prefix.
        boundaries: List[Tuple[int, int]] = [(HEADER_SIZE, 0)]
        commits = 0
        for end, payload in records:
            if payload.get("op") == "commit":
                commits += 1
            boundaries.append((end, commits))
        if commits + 1 != len(shadows):
            raise AssertionError(
                "harness bug: %d commits on disk vs %d shadow states"
                % (commits, len(shadows)))

        previous = HEADER_SIZE
        for end, n_commits in boundaries:
            expected = shadows[n_commits]
            state = _recovered_state(blob[:end], workdir)
            report.record("boundary", end, n_commits, state == expected)
            if torn_tails and end - previous > 2:
                # Cut inside the record: mid-frame and one byte short.
                for torn in (previous + 1, (previous + end) // 2, end - 1):
                    prev_commits = next(c for e, c in reversed(boundaries)
                                        if e <= torn)
                    state = _recovered_state(blob[:torn], workdir)
                    report.record("torn", torn, prev_commits,
                                  state == shadows[prev_commits])
            previous = end
        if corrupt_tails:
            # A partially-fsynced tail: valid prefix + garbage bytes.
            for junk in (b"\xff" * 12, b"\x00" * 12,
                         blob[HEADER_SIZE:HEADER_SIZE + 12]):
                state = _recovered_state(blob[:valid_end] + junk, workdir)
                report.record("corrupt-tail", valid_end, commits,
                              state == shadows[commits])
    finally:
        if owns_dir:
            tmp.cleanup()
    return report


def default_sweep(seeds=(0, 1, 2), n_ops: int = 60,
                  verbose: bool = False) -> FaultReport:
    """The standard multi-seed sweep (used by ``make crashtest``)."""
    report = FaultReport()
    for seed in seeds:
        ops = random_workload(random.Random(seed), n_ops=n_ops)
        crash_sweep(ops, report=report)
        if verbose:
            print("seed %d: %d crash points checked, %d failure(s)"
                  % (seed, report.points, len(report.failures)))
    return report


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    seeds = tuple(int(a) for a in argv) or (0, 1, 2)
    report = default_sweep(seeds=seeds, verbose=True)
    if report.ok:
        print("crash sweep ok: %d point(s), recovery always restored "
              "exactly the committed prefix" % report.points)
        return 0
    print("CRASH SWEEP FAILED at %d point(s):" % len(report.failures))
    for failure in report.failures[:20]:
        print("  %(label)s @%(offset)d (expected %(expected_commits)d "
              "commit(s))" % failure)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
