"""Access methods over named multisets.

Section 4 observes that "the ⊎-based approach is also advantageous in
the presence of certain types of indices.  For example, if we have an
index on all the Students in P, an index on the Employees of P, and an
index on the Persons of P, the need to scan P three times … disappears."
Section 1 likewise motivates indices and cached attributes
[Maie86b, Shek89] for optimized method bodies.

Two access methods are provided:

* :class:`TypedPartitionIndex` — partitions a multiset's occurrences by
  exact type, so a typed SET_APPLY can read its matching occurrences
  directly instead of scanning and filtering;
* :class:`KeyIndex` — a hash index from the value of a key expression to
  the occurrences producing it (equality lookups for selections/joins).

Indexes are built eagerly over an immutable multiset snapshot; since all
algebra values are immutable, staleness only arises when a *named*
object is re-created, which invalidates through :class:`IndexCatalog`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.expr import EvalContext, Expr
from ..core.operators.multiset import exact_type_of
from ..core.values import DNE, MultiSet


class TypedPartitionIndex:
    """Partition of a multiset's occurrences by exact type.

    ``lookup(types)`` returns the sub-multiset of occurrences whose exact
    type is in *types* — the set a typed ``SET_APPLY[T]`` would process —
    in O(distinct elements of the answer) instead of a full scan.
    """

    def __init__(self, collection: MultiSet, ctx: EvalContext):
        if not isinstance(collection, MultiSet):
            raise TypeError("TypedPartitionIndex needs a MultiSet")
        self._partitions: Dict[Optional[str], Dict[Any, int]] = {}
        for element, count in collection.items():
            exact = exact_type_of(element, ctx)
            bucket = self._partitions.setdefault(exact, {})
            bucket[element] = count
        self.source = collection

    def types(self) -> List[Optional[str]]:
        return list(self._partitions)

    def lookup(self, types) -> MultiSet:
        if isinstance(types, str):
            types = [types]
        tally: Dict[Any, int] = {}
        for t in types:
            for element, count in self._partitions.get(t, {}).items():
                tally[element] = tally.get(element, 0) + count
        return MultiSet(counts=tally)


class KeyIndex:
    """Hash index: key-expression value → sub-multiset of occurrences.

    The key expression is evaluated with each occurrence bound to INPUT
    (exactly a SET_APPLY subscript); occurrences whose key is ``dne`` are
    unindexed, mirroring GRP's treatment.
    """

    def __init__(self, key: Expr, collection: MultiSet, ctx: EvalContext):
        if not isinstance(collection, MultiSet):
            raise TypeError("KeyIndex needs a MultiSet")
        self.key = key
        self._buckets: Dict[Any, Dict[Any, int]] = {}
        for element, count in collection.items():
            k = key.evaluate(element, ctx)
            if k is DNE:
                continue
            bucket = self._buckets.setdefault(k, {})
            bucket[element] = bucket.get(element, 0) + count
        self.source = collection

    def lookup(self, key_value: Any) -> MultiSet:
        return MultiSet(counts=self._buckets.get(key_value, {}))

    def keys(self) -> List[Any]:
        return list(self._buckets)


class IndexCatalog:
    """Registry of indexes over named top-level objects.

    The optimizer consults this to decide whether a typed SET_APPLY over
    a named object can be served by partition lookup, and benchmarks use
    it to reproduce the indexed series of the Section 4 trade-off.
    """

    def __init__(self, database):
        self._database = database
        self._typed: Dict[str, TypedPartitionIndex] = {}
        self._keyed: Dict[str, Dict[Expr, KeyIndex]] = {}

    def build_typed(self, name: str) -> TypedPartitionIndex:
        """(Re)build the typed-partition index over named object *name*."""
        ctx = self._database.context()
        index = TypedPartitionIndex(self._database.get(name), ctx)
        self._typed[name] = index
        return index

    def typed(self, name: str) -> Optional[TypedPartitionIndex]:
        index = self._typed.get(name)
        if index is not None and index.source is not self._database.get(name):
            # The named object was re-created; the snapshot is stale.
            del self._typed[name]
            return None
        return index

    def build_keyed(self, name: str, key: Expr) -> KeyIndex:
        ctx = self._database.context()
        index = KeyIndex(key, self._database.get(name), ctx)
        self._keyed.setdefault(name, {})[key] = index
        return index

    def keyed(self, name: str, key: Expr) -> Optional[KeyIndex]:
        index = self._keyed.get(name, {}).get(key)
        if index is not None and index.source is not self._database.get(name):
            del self._keyed[name][key]
            return None
        return index

    def invalidate(self, name: str) -> None:
        self._typed.pop(name, None)
        self._keyed.pop(name, None)

    def definitions(self) -> List[dict]:
        """Serializable definitions of every *live* index (stale
        snapshots are pruned as a side effect).  The persistence layer
        stores these and rebuilds the indexes on load — index contents
        are derived data, so only the definitions need to survive."""
        from ..core.serialize import expr_to_json
        defs: List[dict] = []
        for name in sorted(self._typed):
            try:
                live = self.typed(name)
            except KeyError:  # named object dropped: index is dead
                live = None
            if live is not None:
                defs.append({"name": name, "kind": "typed"})
        for name in sorted(self._keyed):
            for key in list(self._keyed[name]):
                try:
                    live = self.keyed(name, key)
                except KeyError:
                    live = None
                if live is not None:
                    defs.append({"name": name, "kind": "keyed",
                                 "key": expr_to_json(key)})
        return defs
