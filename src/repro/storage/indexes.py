"""Access methods over named multisets.

Section 4 observes that "the ⊎-based approach is also advantageous in
the presence of certain types of indices.  For example, if we have an
index on all the Students in P, an index on the Employees of P, and an
index on the Persons of P, the need to scan P three times … disappears."
Section 1 likewise motivates indices and cached attributes
[Maie86b, Shek89] for optimized method bodies.

Three access methods are provided:

* :class:`TypedPartitionIndex` — partitions a multiset's occurrences by
  exact type, so a typed SET_APPLY can read its matching occurrences
  directly instead of scanning and filtering;
* :class:`KeyIndex` — a hash index from the value of a key expression to
  the occurrences producing it (equality lookups for selections/joins);
* :class:`OrderedIndex` — a sorted-array index over the key expression,
  serving range predicates (``<``, ``≤``, between) by binary search.

Indexes are built eagerly over an immutable multiset snapshot.  The
catalog keeps two layers of state:

* *definitions* — durable DDL ("there is a keyed index on P by age").
  Definitions survive re-creates of the named object, transaction
  aborts, and — via the WAL (``kind: index_create`` / ``index_drop``
  DDL records) and the snapshot — restarts.
* *built snapshots* — derived data.  A snapshot goes stale when the
  named object is re-created (identity check against the stored value)
  or, for indexes whose contents depend on the object store (a typed
  index over refs, a key expression that dereferences), when the store
  version moves.  ``probe_*`` lazily rebuilds a stale snapshot from its
  definition; the legacy ``typed()``/``keyed()`` accessors only report.

Null discipline mirrors the predicates the engines evaluate: a ``dne``
key unindexes its occurrence (the atom would be F), while ``unk`` keys
are tallied separately — an equality or range probe reports them as the
``unk`` occurrences a σ's U verdict would produce.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.expr import Const, EvalContext, Expr, Input
from ..core.operators.multiset import exact_type_of
from ..core.operators.tuples import Pi, TupCat, TupCreate, TupExtract
from ..core.values import DNE, UNK, MultiSet, Ref
from ..obs.metrics import (INDEX_BUILDS_TOTAL, INDEX_DROPS_TOTAL,
                           INDEX_PROBES_TOTAL)

#: Unbounded end of a range probe.
UNBOUNDED = object()

#: Expression nodes whose value is a pure function of the element —
#: keys built from these never consult the object store, so the index
#: only goes stale when the named object itself is re-created.
_PURE_KEY_NODES = (Input, Const, TupExtract, Pi, TupCat, TupCreate)


def _key_reads_store(key: Expr) -> bool:
    """Conservative: anything beyond pure tuple navigation (a deref, a
    method call, a registered function) may read mutable store state."""
    return any(not isinstance(node, _PURE_KEY_NODES) for node in key.walk())


def comparability_class(value: Any) -> Any:
    """The group of values *value* orders against without a TypeError.

    Numbers (bools included) form one class, strings another, and
    everything else groups by its exact Python type — mirroring
    ``_compare_scalars``, whose TypeError is the U verdict a range
    probe must reproduce for cross-class comparisons.
    """
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return type(value)


def _stamp(index: Any, ctx: EvalContext) -> None:
    store = getattr(ctx, "store", None)
    index.store_version = getattr(store, "version", None)


class TypedPartitionIndex:
    """Partition of a multiset's occurrences by exact type.

    ``lookup(types)`` returns the sub-multiset of occurrences whose exact
    type is in *types* — the set a typed ``SET_APPLY[T]`` would process —
    in O(distinct elements of the answer) instead of a full scan.
    """

    kind = "typed"

    def __init__(self, collection: MultiSet, ctx: EvalContext):
        if not isinstance(collection, MultiSet):
            raise TypeError("TypedPartitionIndex needs a MultiSet")
        self._partitions: Dict[Optional[str], Dict[Any, int]] = {}
        self.occurrences = 0
        # A ref's exact type lives in the store; migrating the object
        # repartitions it, so the snapshot must track store versions.
        self.reads_store = False
        for element, count in collection.items():
            exact = exact_type_of(element, ctx)
            bucket = self._partitions.setdefault(exact, {})
            bucket[element] = count
            self.occurrences += count
            if isinstance(element, Ref):
                self.reads_store = True
        self.source = collection
        _stamp(self, ctx)

    def types(self) -> List[Optional[str]]:
        return list(self._partitions)

    def lookup(self, types) -> MultiSet:
        if isinstance(types, str):
            types = [types]
        tally: Dict[Any, int] = {}
        for t in types:
            for element, count in self._partitions.get(t, {}).items():
                tally[element] = tally.get(element, 0) + count
        return MultiSet(counts=tally)


class KeyIndex:
    """Hash index: key-expression value → sub-multiset of occurrences.

    The key expression is evaluated with each occurrence bound to INPUT
    (exactly a SET_APPLY subscript); occurrences whose key is ``dne`` are
    unindexed, mirroring GRP's treatment, and ``unk``-keyed occurrences
    are tallied aside so equality probes can emit the U-verdict ``unk``
    occurrences a scanning σ would produce.
    """

    kind = "keyed"

    def __init__(self, key: Expr, collection: MultiSet, ctx: EvalContext):
        if not isinstance(collection, MultiSet):
            raise TypeError("KeyIndex needs a MultiSet")
        self.key = key
        self._buckets: Dict[Any, Dict[Any, int]] = {}
        self.unk_count = 0      # occurrences whose key is unk (or that
        self.indexed_count = 0  # ARE unk) vs. occurrences bucketed
        for element, count in collection.items():
            k = key.evaluate(element, ctx)
            if k is DNE:
                continue
            if k is UNK:
                self.unk_count += count
                continue
            bucket = self._buckets.setdefault(k, {})
            bucket[element] = bucket.get(element, 0) + count
            self.indexed_count += count
        self.occurrences = self.indexed_count + self.unk_count
        self.reads_store = _key_reads_store(key)
        self.source = collection
        _stamp(self, ctx)

    def lookup(self, key_value: Any) -> MultiSet:
        return MultiSet(counts=self._buckets.get(key_value, {}))

    def bucket(self, key_value: Any) -> Optional[Dict[Any, int]]:
        """The raw (element → count) tally for *key_value*, or None —
        zero-copy, for join probes."""
        return self._buckets.get(key_value)

    def probe(self, key_value: Any) -> Iterator[Tuple[Any, int]]:
        """Occurrence chunks a σ ``key = key_value`` would keep: the
        matching bucket plus one aggregated ``unk`` occurrence for every
        U verdict (unk keys and unk elements alike)."""
        bucket = self._buckets.get(key_value)
        if bucket:
            for item in bucket.items():
                yield item
        if self.unk_count:
            yield UNK, self.unk_count

    def keys(self) -> List[Any]:
        return list(self._buckets)


class OrderedIndex:
    """Sorted-array index (the B-tree of this storage layer's scale).

    Keys bucket exactly as :class:`KeyIndex`; buckets are then grouped
    by :func:`comparability_class` and each class's keys kept sorted, so
    a range probe bisects the bound's class in O(log n + answer).
    Occurrences in *other* classes are precisely those whose comparison
    with the bound raises TypeError — ``_compare_scalars``'s U verdict —
    so the probe reports them (plus unk-keyed occurrences) as one
    aggregated ``unk`` occurrence count, bit-identical to the scan.
    """

    kind = "ordered"

    def __init__(self, key: Expr, collection: MultiSet, ctx: EvalContext):
        if not isinstance(collection, MultiSet):
            raise TypeError("OrderedIndex needs a MultiSet")
        self.key = key
        self.unk_count = 0
        self.indexed_count = 0
        buckets: Dict[Any, Dict[Any, int]] = {}
        for element, count in collection.items():
            k = key.evaluate(element, ctx)
            if k is DNE:
                continue
            if k is UNK:
                self.unk_count += count
                continue
            bucket = buckets.setdefault(k, {})
            bucket[element] = bucket.get(element, 0) + count
            self.indexed_count += count
        self._groups: Dict[Any, dict] = {}
        for k, bucket in buckets.items():
            cls = comparability_class(k)
            group = self._groups.setdefault(
                cls, {"pairs": [], "count": 0, "sortable": True})
            group["pairs"].append((k, bucket))
            group["count"] += sum(bucket.values())
        for group in self._groups.values():
            try:
                group["pairs"].sort(key=lambda pair: pair[0])
            except TypeError:
                # Members of this class don't order even among
                # themselves; every comparison is a U verdict.
                group["sortable"] = False
            else:
                group["keys"] = [k for k, _ in group["pairs"]]
        self.occurrences = self.indexed_count + self.unk_count
        self.reads_store = _key_reads_store(key)
        self.source = collection
        _stamp(self, ctx)

    def keys(self) -> List[Any]:
        return [k for group in self._groups.values()
                for k, _ in group["pairs"]]

    def probe_range(self, low: Any = UNBOUNDED, high: Any = UNBOUNDED,
                    incl_low: bool = True,
                    incl_high: bool = True) -> Iterator[Tuple[Any, int]]:
        """Occurrence chunks a σ over ``low ⋖ key ⋖ high`` would keep.

        Matches come from the bound's comparability class via bisect;
        every occurrence in another class — where the scan's comparison
        would raise TypeError → U — and every unk-keyed occurrence is
        folded into one trailing ``unk`` chunk.
        """
        bound = low if low is not UNBOUNDED else high
        cls = comparability_class(bound)
        unk = self.unk_count
        for group_cls, group in self._groups.items():
            if group_cls != cls or not group["sortable"]:
                unk += group["count"]
                continue
            keys = group["keys"]
            if low is UNBOUNDED:
                lo = 0
            elif incl_low:
                lo = bisect_left(keys, low)
            else:
                lo = bisect_right(keys, low)
            if high is UNBOUNDED:
                hi = len(keys)
            elif incl_high:
                hi = bisect_right(keys, high)
            else:
                hi = bisect_left(keys, high)
            for _, bucket in group["pairs"][lo:hi]:
                for item in bucket.items():
                    yield item
        if unk:
            yield UNK, unk


#: Index classes by definition kind.
_INDEX_KINDS = {"typed": TypedPartitionIndex, "keyed": KeyIndex,
                "ordered": OrderedIndex}


class IndexCatalog:
    """Registry of indexes over named top-level objects.

    The compiled engine's probe lowering consults this at run time
    (``probe_typed``/``probe_keyed``/``probe_ordered`` — live snapshot
    or lazy rebuild from the definition), the optimizer to rank access
    paths, the persistence layer to round-trip definitions, and the
    shell's ``.indexes`` to report sizes and hit counters.
    """

    def __init__(self, database):
        self._database = database
        self._typed: Dict[str, TypedPartitionIndex] = {}
        self._keyed: Dict[str, Dict[Expr, KeyIndex]] = {}
        self._ordered: Dict[str, Dict[Expr, OrderedIndex]] = {}
        #: Durable definitions: (kind, name, key-expr-or-None) → True.
        self._defs: Dict[Tuple[str, str, Optional[Expr]], bool] = {}
        #: Probe counters per definition (survive rebuilds).
        self.hits: Dict[Tuple[str, str, Optional[Expr]], int] = {}

    # -- definitions (durable DDL) ------------------------------------

    def _register(self, kind: str, name: str, key: Optional[Expr]) -> None:
        def_key = (kind, name, key)
        if def_key in self._defs:
            return
        self._defs[def_key] = True
        self.hits.setdefault(def_key, 0)
        journal = getattr(self._database, "journal", None)
        if journal is not None:
            journal.log_ddl({"kind": "index_create",
                             "index": self._def_json(def_key)})

    @staticmethod
    def _def_json(def_key: Tuple[str, str, Optional[Expr]]) -> dict:
        from ..core.serialize import expr_to_json
        kind, name, key = def_key
        entry = {"name": name, "kind": kind}
        if key is not None:
            entry["key"] = expr_to_json(key)
        return entry

    def create_index(self, kind: str, name: str,
                     key: Optional[Expr] = None):
        """Define (journaled DDL) and build an index; returns it."""
        if kind == "typed":
            return self.build_typed(name)
        if key is None:
            raise ValueError("%s index needs a key expression" % kind)
        if kind == "keyed":
            return self.build_keyed(name, key)
        if kind == "ordered":
            return self.build_ordered(name, key)
        raise ValueError("unknown index kind %r "
                         "(typed, keyed, ordered)" % (kind,))

    def drop_index(self, kind: str, name: str,
                   key: Optional[Expr] = None) -> bool:
        """Remove a definition (journaled DDL) and its built snapshot.

        Keyed/ordered definitions always carry a key expression, so
        ``key=None`` there means "whichever index of this kind is on
        this name" — the CLI drops by (kind, name) without asking the
        user to respell the key."""
        if key is None and kind != "typed":
            matches = [dk for dk in self._defs
                       if dk[0] == kind and dk[1] == name]
            if not matches:
                return False
            return all(self.drop_index(*dk) for dk in matches)
        def_key = (kind, name, key)
        if def_key not in self._defs:
            return False
        payload = self._def_json(def_key)
        del self._defs[def_key]
        self.hits.pop(def_key, None)
        if kind == "typed":
            self._typed.pop(name, None)
        elif kind == "keyed":
            self._keyed.get(name, {}).pop(key, None)
        else:
            self._ordered.get(name, {}).pop(key, None)
        journal = getattr(self._database, "journal", None)
        if journal is not None:
            journal.log_ddl({"kind": "index_drop", "index": payload})
        INDEX_DROPS_TOTAL.inc(kind=kind)
        return True

    def restore(self, entries: List[dict]) -> None:
        """Re-register definitions from a snapshot or a replayed WAL
        record — no journaling (the caller IS the journal).  Builds
        eagerly when the named object exists; otherwise the definition
        waits for ``probe_*`` to rebuild on demand."""
        from ..core.serialize import expr_from_json
        for entry in entries:
            kind = entry["kind"]
            key = expr_from_json(entry["key"]) if "key" in entry else None
            def_key = (kind, entry["name"], key)
            self._defs[def_key] = True
            self.hits.setdefault(def_key, 0)
            try:
                self._build(def_key)
            except KeyError:
                pass  # named object absent; definition stays pending

    def remove_definition(self, entry: dict) -> None:
        """Apply a replayed ``index_drop`` — no journaling."""
        from ..core.serialize import expr_from_json
        kind = entry["kind"]
        key = expr_from_json(entry["key"]) if "key" in entry else None
        def_key = (kind, entry["name"], key)
        self._defs.pop(def_key, None)
        self.hits.pop(def_key, None)
        if kind == "typed":
            self._typed.pop(entry["name"], None)
        elif kind == "keyed":
            self._keyed.get(entry["name"], {}).pop(key, None)
        else:
            self._ordered.get(entry["name"], {}).pop(key, None)

    def has_definition(self, name: str,
                       kind: Optional[str] = None) -> bool:
        """Whether a definition exists for *name* (optionally of *kind*).
        The cost model consults this before pricing a probe path."""
        return any(dk[1] == name and (kind is None or dk[0] == kind)
                   for dk in self._defs)

    @staticmethod
    def _def_sort(def_key: Tuple[str, str, Optional[Expr]]):
        kind, name, key = def_key
        return (0 if kind == "typed" else 1, name, kind,
                key.describe() if key is not None else "")

    def definitions(self) -> List[dict]:
        """Serializable definitions of every index whose named object
        still exists (a dropped name kills its definitions).  The
        persistence layer stores these and rebuilds on load — index
        contents are derived data, only definitions need to survive."""
        defs: List[dict] = []
        for def_key in sorted(self._defs, key=self._def_sort):
            try:
                self._database.get(def_key[1])
            except KeyError:
                continue
            defs.append(self._def_json(def_key))
        return defs

    # -- builds -------------------------------------------------------

    def _build(self, def_key: Tuple[str, str, Optional[Expr]]):
        kind, name, key = def_key
        ctx = self._database.context()
        collection = self._database.get(name)
        if kind == "typed":
            index = TypedPartitionIndex(collection, ctx)
            self._typed[name] = index
        elif kind == "keyed":
            index = KeyIndex(key, collection, ctx)
            self._keyed.setdefault(name, {})[key] = index
        else:
            index = OrderedIndex(key, collection, ctx)
            self._ordered.setdefault(name, {})[key] = index
        INDEX_BUILDS_TOTAL.inc(kind=kind)
        return index

    def build_typed(self, name: str) -> TypedPartitionIndex:
        """(Re)build the typed-partition index over named object *name*."""
        index = self._build(("typed", name, None))
        self._register("typed", name, None)
        return index

    def build_keyed(self, name: str, key: Expr) -> KeyIndex:
        index = self._build(("keyed", name, key))
        self._register("keyed", name, key)
        return index

    def build_ordered(self, name: str, key: Expr) -> OrderedIndex:
        index = self._build(("ordered", name, key))
        self._register("ordered", name, key)
        return index

    # -- legacy accessors: report the built snapshot, never rebuild ----

    def typed(self, name: str) -> Optional[TypedPartitionIndex]:
        index = self._typed.get(name)
        if index is not None and index.source is not self._database.get(name):
            # The named object was re-created; the snapshot is stale.
            del self._typed[name]
            return None
        return index

    def keyed(self, name: str, key: Expr) -> Optional[KeyIndex]:
        index = self._keyed.get(name, {}).get(key)
        if index is not None and index.source is not self._database.get(name):
            del self._keyed[name][key]
            return None
        return index

    def ordered(self, name: str, key: Expr) -> Optional[OrderedIndex]:
        index = self._ordered.get(name, {}).get(key)
        if index is not None and index.source is not self._database.get(name):
            del self._ordered[name][key]
            return None
        return index

    # -- probes: live snapshot or lazy rebuild from the definition ----

    def _is_live(self, index) -> bool:
        if index.reads_store:
            store = getattr(self._database, "store", None)
            if getattr(store, "version", None) != index.store_version:
                return False
        return True

    def _probe(self, def_key: Tuple[str, str, Optional[Expr]], built,
               count: bool):
        if def_key not in self._defs:
            return None
        if built is not None:
            try:
                current = self._database.get(def_key[1])
            except KeyError:
                return None
            if built.source is not current or not self._is_live(built):
                built = None
        if built is None:
            try:
                built = self._build(def_key)
            except (KeyError, TypeError):
                # Named object gone, or re-created as a non-multiset:
                # the definition stays pending and callers fall back to
                # their scan path (which reports the real error).
                return None
        if count:
            self.record_probe(*def_key)
        return built

    def probe_typed(self, name: str,
                    count: bool = True) -> Optional[TypedPartitionIndex]:
        return self._probe(("typed", name, None),
                           self._typed.get(name), count)

    def probe_keyed(self, name: str, key: Expr,
                    count: bool = True) -> Optional[KeyIndex]:
        return self._probe(("keyed", name, key),
                           self._keyed.get(name, {}).get(key), count)

    def probe_ordered(self, name: str, key: Expr,
                      count: bool = True) -> Optional[OrderedIndex]:
        return self._probe(("ordered", name, key),
                           self._ordered.get(name, {}).get(key), count)

    def record_probe(self, kind: str, name: str,
                     key: Optional[Expr] = None, n: int = 1) -> None:
        """Bump the per-definition hit counter and the registry metric
        (callers that peeked with ``count=False`` settle up here)."""
        def_key = (kind, name, key)
        if def_key in self._defs:
            self.hits[def_key] = self.hits.get(def_key, 0) + n
            INDEX_PROBES_TOTAL.inc(n, kind=kind)

    # -- invalidation and inheritance ---------------------------------

    def invalidate(self, name: str) -> None:
        """Drop built snapshots over *name* (definitions survive — they
        are DDL; the next probe rebuilds over the current value)."""
        self._typed.pop(name, None)
        self._keyed.pop(name, None)
        self._ordered.pop(name, None)

    def closed_types(self, type_name: str) -> frozenset:
        """The exact types a typed probe for *type_name* must union:
        C3 descendants-or-self, so a probe for Person reads the Person,
        Student, and Employee partitions."""
        hierarchy = self._database.hierarchy
        if type_name in hierarchy:
            return frozenset(hierarchy.descendants_or_self(type_name))
        return frozenset([type_name])

    # -- reporting ----------------------------------------------------

    def snapshot_view(self, view, epoch: int, cache: Dict,
                      lock) -> "IndexCatalogView":
        """A frozen view of this catalog over snapshot *view* — see
        :class:`IndexCatalogView`.  *cache* is the per-epoch built-index
        dict shared by every reader pinned to *epoch*; *lock* serializes
        lazy builds into it."""
        return IndexCatalogView(self, view, epoch, cache, lock)

    def describe_rows(self) -> List[dict]:
        """One row per definition for ``.indexes``: kind, name, key,
        size (occurrences; None while stale/unbuilt), probe hits."""
        rows: List[dict] = []
        for def_key in sorted(self._defs, key=self._def_sort):
            kind, name, key = def_key
            if kind == "typed":
                built = self._typed.get(name)
            elif kind == "keyed":
                built = self._keyed.get(name, {}).get(key)
            else:
                built = self._ordered.get(name, {}).get(key)
            live = False
            if built is not None:
                try:
                    live = (built.source is self._database.get(name)
                            and self._is_live(built))
                except KeyError:
                    live = False
            rows.append({
                "kind": kind, "name": name,
                "key": key.describe() if key is not None else "",
                "size": built.occurrences if live else None,
                "hits": self.hits.get(def_key, 0),
                "live": live,
            })
        return rows


#: Cache slot for "no build attempted yet at this epoch".
_UNBUILT = object()


class IndexCatalogView:
    """A frozen, epoch-stamped view of an :class:`IndexCatalog`.

    Secondary indexes track the *live* store, so a snapshot reader that
    probed the live catalog could surface rows committed after its
    version.  This view closes that gap: it captures the catalog's
    definitions at snapshot creation and lazily builds each probed
    index **over the snapshot's own frozen collections**, so every
    probe answer is exactly what a scan of the snapshot would produce.

    It implements the full duck-type surface the optimizer and the
    compiled engines consult on a catalog — ``has_definition`` /
    ``closed_types`` at plan time, ``probe_typed`` / ``probe_keyed`` /
    ``probe_ordered`` / ``record_probe`` at run time — so
    ``CostModel.choose_access_path`` and ``compile_plan`` consume it
    exactly like the live catalog.

    Builds are memoized in a per-epoch dict owned by the transaction
    manager and shared by every reader pinned to the same epoch (equal
    epochs imply identical data *and* definitions — index DDL commits
    and therefore advances the version).  A build happens at most once
    per (epoch, definition): concurrent probers of the same definition
    wait on the manager's build lock rather than duplicating work, and
    a snapshot never goes stale, so a built index is never rebuilt.
    Hit counters still land on the live catalog — observability tracks
    total probe traffic, not per-epoch traffic.
    """

    def __init__(self, catalog: IndexCatalog, view, epoch: int,
                 cache: Dict, lock):
        self._catalog = catalog
        self._view = view
        self.epoch = epoch
        self._cache = cache
        self._lock = lock
        # GIL-atomic copy: the writer thread may be mid-DDL, but a def
        # it is adding only ever describes data this snapshot already
        # contains (index DDL never changes collection contents), so
        # either copy is correct for this epoch.
        self._defs = dict(catalog._defs)
        self._ctx: Optional[EvalContext] = None

    # -- plan-time surface -------------------------------------------

    def has_definition(self, name: str,
                       kind: Optional[str] = None) -> bool:
        return any(dk[1] == name and (kind is None or dk[0] == kind)
                   for dk in self._defs)

    def closed_types(self, type_name: str) -> frozenset:
        # The type hierarchy only grows and DDL is not undone by abort;
        # descendant types defined after the snapshot have no members
        # visible at this version, so delegating is exact.
        return self._catalog.closed_types(type_name)

    def definitions(self) -> List[dict]:
        return [IndexCatalog._def_json(dk)
                for dk in sorted(self._defs, key=IndexCatalog._def_sort)]

    # -- run-time surface --------------------------------------------

    def record_probe(self, kind: str, name: str,
                     key: Optional[Expr] = None, n: int = 1) -> None:
        self._catalog.record_probe(kind, name, key, n)

    def probe_typed(self, name: str,
                    count: bool = True) -> Optional[TypedPartitionIndex]:
        return self._probe(("typed", name, None), count)

    def probe_keyed(self, name: str, key: Expr,
                    count: bool = True) -> Optional[KeyIndex]:
        return self._probe(("keyed", name, key), count)

    def probe_ordered(self, name: str, key: Expr,
                      count: bool = True) -> Optional[OrderedIndex]:
        return self._probe(("ordered", name, key), count)

    def _probe(self, def_key: Tuple[str, str, Optional[Expr]],
               count: bool):
        if def_key not in self._defs:
            return None
        built = self._cache.get(def_key, _UNBUILT)
        if built is _UNBUILT:
            with self._lock:
                built = self._cache.get(def_key, _UNBUILT)
                if built is _UNBUILT:
                    built = self._build(def_key)
                    self._cache[def_key] = built
        if built is None:
            return None
        if count:
            self.record_probe(*def_key)
        return built

    def _build(self, def_key: Tuple[str, str, Optional[Expr]]):
        """Build one index over the snapshot (caller holds the lock).

        The build context is deliberately *unguarded*: a cancelled
        reader finishes the (bounded) build rather than poisoning the
        shared cache with a half-built index.  ``None`` is cached when
        the named object is absent or not a multiset at this version —
        callers fall back to their scan path, which reports the real
        error.
        """
        kind, name, key = def_key
        if self._ctx is None:
            db = self._catalog._database
            self._ctx = EvalContext(
                database=self._view.named, store=self._view.store,
                functions=db.functions, methods=db.methods, indexes=None)
        try:
            collection = self._view.named[name]
        except KeyError:
            return None
        try:
            if kind == "typed":
                index = TypedPartitionIndex(collection, self._ctx)
            elif kind == "keyed":
                index = KeyIndex(key, collection, self._ctx)
            else:
                index = OrderedIndex(key, collection, self._ctx)
        except TypeError:
            return None
        INDEX_BUILDS_TOTAL.inc(kind=kind)
        return index

    def __repr__(self) -> str:
        return "<IndexCatalogView @epoch%d defs=%d built=%d>" % (
            self.epoch, len(self._defs), len(self._cache))
