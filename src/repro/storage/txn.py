"""Transactions, snapshot reads, and crash recovery over the store.

The paper's EXCESS/EXTRA system sat on the EXODUS storage manager,
which supplied transactions and recovery "for free"; the algebra takes
them for granted.  This module reproduces that missing layer for the
dictionary-backed :class:`~repro.storage.store.ObjectStore`:

* **Write-ahead logging** — every mutation of the store (insert,
  update, delete, migrate), of the named top-level objects (create,
  drop), and of the schema (type/method definitions) is captured as a
  redo record.  A transaction's records are buffered in memory and
  written to the :class:`~repro.storage.wal.WriteAheadLog` as one
  contiguous ``begin … ops … commit`` group whose final fsync is the
  commit point, so the log never interleaves transactions and a torn
  tail can only ever clip *whole* uncommitted transactions.

* **Redo-on-open recovery** — :func:`replay_log` applies exactly the
  committed transactions found in a log, in order, restoring objects,
  exact types, named objects, schema, *and the OID generator counters*
  (each commit record carries the generator snapshot, so identity
  allocation never collides after a crash).  Replay is idempotent, so
  a crash between checkpoint's snapshot write and its log truncation
  is harmless.

* **Snapshot-isolated reads** — the manager versions every OID-table
  and name-table entry it touches: when a committed value is about to
  be superseded, the old state is appended to a per-key version chain
  tagged with the version at which it became visible.
  :meth:`TransactionManager.snapshot` captures the current committed
  version; the resulting :class:`SnapshotView` resolves every read
  against that version, so a running query (interpreted or compiled)
  sees a stable store while writers keep committing — and never sees
  an uncommitted value, because uncommitted entries are marked
  ``PENDING`` and resolve through the chain.

* **Explicit transactions with savepoints** — ``begin into
  commit/abort``, with an undo log per transaction so abort restores
  the exact pre-transaction state (identity included).  Callers that
  never call ``begin`` get autocommit: each mutation is its own
  durable transaction.  Schema (DDL) changes are logged for durability
  but are not undone by abort — the paper's DDL has no transactional
  semantics either.

* **Checkpointing** — :meth:`TransactionManager.checkpoint` folds the
  log into the existing JSON snapshot format (atomically, via
  ``os.replace``) and truncates the log.

:func:`open_database` packages all of it: a directory holding
``snapshot.json`` + ``wal.log`` opens into a recovered database with a
durable manager attached.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.expr import EvalContext
from ..obs.metrics import (INDEX_EPOCH, SNAPSHOT_OLDEST_AGE_SECONDS,
                           SNAPSHOT_VIEWS_LIVE, SNAPSHOTS_TOTAL,
                           TXN_ABORTS_TOTAL, TXN_COMMITS_TOTAL,
                           WAL_BATCH_RECORDS)
from ..core.serialize import (expr_from_json, expr_to_json, value_from_json,
                              value_to_json)
from .store import DEFAULT_TYPE, Database, StoreError
from .wal import WriteAheadLog, read_records

#: Version tag of an entry whose transaction has not committed yet.
PENDING = object()

#: Chain state for "this key did not exist at that version".
GONE = object()

_MISSING = object()


class TxnError(RuntimeError):
    """Illegal transaction operation (begin inside begin, commit with
    no transaction, checkpoint mid-transaction, …)."""


class _Txn:
    """One open transaction: its redo buffer and undo log."""

    __slots__ = ("txid", "implicit", "records", "undo", "touched",
                 "savepoints")

    def __init__(self, txid: int, implicit: bool = False):
        self.txid = txid
        self.implicit = implicit
        #: Buffered WAL payloads, written as one group at commit.
        self.records: List[Dict[str, Any]] = []
        #: Undo entries, applied in reverse on abort:
        #: (key, undo_op, chain_appended, prior_from).
        self.undo: List[Tuple[Any, Tuple, bool, Any]] = []
        self.touched: Set[Tuple[str, Any]] = set()
        self.savepoints: Dict[str, Tuple[int, int]] = {}


class TransactionManager:
    """Transactions + MVCC bookkeeping for one database.

    Attaching a manager sets ``db.txn``, ``db.journal``, and
    ``db.store.journal``; from then on every mutation flows through the
    journal callbacks below.  A database without a manager pays zero
    overhead (the journal hooks are ``None`` checks).
    """

    def __init__(self, db: Database, wal: Optional[WriteAheadLog] = None,
                 snapshot_path: Optional[str] = None):
        self.db = db
        self.wal = wal
        self.snapshot_path = snapshot_path
        #: The committed-transaction version; snapshots capture it.
        self.version = 0
        self.active: Optional[_Txn] = None
        self._next_tx = 1
        self._next_sp = 1
        self._replaying = False
        self._undoing = False
        # MVCC: key -> version the current value became visible at
        # (PENDING while its transaction is open; absent = unchanged
        # since attach, i.e. visible in every snapshot), and key ->
        # ascending chain of (from_version, superseded state).
        self._from: Dict[Tuple[str, Any], Any] = {}
        self._chain: Dict[Tuple[str, Any], List[Tuple[int, Any]]] = {}
        # Snapshot pinning: version -> live SnapshotView count.  prune()
        # clamps to the oldest pinned version so a long-running reader's
        # chain history (and its epoch's index cache) is never freed
        # under it.  RLock: unpins fire from weakref finalizers, which
        # the GC may run on a thread already holding the lock.
        self._pins: Dict[int, int] = {}
        self._pin_lock = threading.RLock()
        # Per-epoch snapshot index caches (epoch == self.version at
        # snapshot time), shared by every reader pinned to that epoch;
        # one lock serializes the lazy builds (see IndexCatalogView).
        self._epoch_indexes: Dict[int, Dict] = {}
        self._index_build_lock = threading.Lock()
        db.txn = self
        db.journal = self
        db.store.journal = self
        self._wrap_ddl()
        _LIVE_MANAGERS.add(self)

    # -- transaction control ----------------------------------------------

    def begin(self) -> int:
        """Open an explicit transaction; returns its id."""
        if self.active is not None:
            raise TxnError("a transaction is already active "
                           "(use savepoints for nesting)")
        return self._begin(implicit=False)

    def _begin(self, implicit: bool) -> int:
        txid = self._next_tx
        self._next_tx += 1
        self.active = _Txn(txid, implicit=implicit)
        return txid

    def commit(self) -> None:
        """Make the active transaction durable and visible to future
        snapshots.  The WAL group write + fsync happens first; if it
        fails, the transaction is rolled back and the error re-raised,
        so in-memory state never runs ahead of the log."""
        txn = self.active
        if txn is None:
            raise TxnError("no active transaction to commit")
        if self.wal is not None and txn.records:
            group = [{"op": "begin", "tx": txn.txid}]
            group.extend(txn.records)
            group.append({"op": "commit", "tx": txn.txid,
                          "oids": self.db.store.oids.snapshot()})
            tracer = getattr(self.db, "tracer", None)
            span = None
            if tracer is not None and tracer.enabled:
                span = tracer.start_span("wal.commit", kind="wal",
                                         meta={"records": len(group)})
            started = time.perf_counter()
            try:
                self.wal.append_batch(group)
            except Exception:
                if span is not None:
                    span.calls += 1
                    span.wall += time.perf_counter() - started
                    tracer.finish(span)
                self.abort()
                raise
            if span is not None:
                span.calls += 1
                span.wall += time.perf_counter() - started
                span.rows_out = len(group)
                tracer.finish(span)
            WAL_BATCH_RECORDS.observe(len(group))
        TXN_COMMITS_TOTAL.inc()
        self.version += 1
        version = self.version
        for key in txn.touched:
            if self._from.get(key) is PENDING:
                self._from[key] = version
        self.active = None

    def abort(self) -> None:
        """Roll the active transaction back: every mutation is undone
        (in reverse), version chains are unwound, nothing reaches the
        log.  OIDs allocated by the transaction stay burned, as in any
        real allocator."""
        txn = self.active
        if txn is None:
            raise TxnError("no active transaction to abort")
        self._undo_to(txn, 0)
        self.active = None
        TXN_ABORTS_TOTAL.inc()

    def savepoint(self, name: Optional[str] = None) -> str:
        """Mark a rollback point inside the active transaction."""
        txn = self.active
        if txn is None:
            raise TxnError("savepoints need an active transaction")
        if name is None:
            name = "sp%d" % self._next_sp
            self._next_sp += 1
        txn.savepoints[name] = (len(txn.undo), len(txn.records))
        return name

    def rollback_to(self, name: str) -> None:
        """Undo everything after savepoint *name*, which stays valid."""
        txn = self.active
        if txn is None:
            raise TxnError("no active transaction")
        if name not in txn.savepoints:
            raise TxnError("no savepoint named %r" % name)
        undo_len, rec_len = txn.savepoints[name]
        self._undo_to(txn, undo_len)
        del txn.records[rec_len:]
        for later in [n for n, (u, _) in txn.savepoints.items()
                      if u > undo_len]:
            del txn.savepoints[later]

    def _undo_to(self, txn: _Txn, undo_len: int) -> None:
        self._undoing = True
        try:
            while len(txn.undo) > undo_len:
                key, undo_op, appended, prior_from = txn.undo.pop()
                self._apply_undo(key, undo_op)
                if appended and key is not None:
                    chain = self._chain.get(key)
                    if chain:
                        chain.pop()
                        if not chain:
                            del self._chain[key]
                    if prior_from == 0:
                        self._from.pop(key, None)
                    else:
                        self._from[key] = prior_from
                    txn.touched.discard(key)
        finally:
            self._undoing = False

    def _apply_undo(self, key, undo_op: Tuple) -> None:
        store = self.db.store
        kind = undo_op[0]
        if kind == "del":
            store._apply_delete(key[1])
        elif kind == "set":
            store._apply_update(key[1], undo_op[1])
        elif kind == "ins":
            store._apply_insert(key[1], undo_op[1], undo_op[2])
        elif kind == "type":
            store._apply_migrate(key[1], undo_op[1])
        elif kind == "nset":
            self.db._named[key[1]] = undo_op[1]
            self.db.indexes.invalidate(key[1])
        elif kind == "ndel":
            self.db._named.pop(key[1], None)
            self.db.indexes.invalidate(key[1])
        elif kind == "none":
            pass
        else:  # pragma: no cover - defensive
            raise TxnError("unknown undo op %r" % (kind,))

    # -- the journal (called by ObjectStore / Database after applying) ----

    def _mutation(self, key, old_state, wal_payload, undo_op) -> None:
        if self._replaying or self._undoing:
            return
        implicit = self.active is None
        if implicit:
            self._begin(implicit=True)
        txn = self.active
        appended = False
        prior_from = 0
        if key is not None:
            prior_from = self._from.get(key, 0)
            if prior_from is not PENDING:
                self._chain.setdefault(key, []).append(
                    (prior_from, old_state))
                self._from[key] = PENDING
                appended = True
            txn.touched.add(key)
        txn.undo.append((key, undo_op, appended, prior_from))
        if wal_payload is not None:
            wal_payload["tx"] = txn.txid
            txn.records.append(wal_payload)
        if implicit:
            self.commit()

    def on_store_insert(self, oid, type_name, value) -> None:
        self._mutation(("obj", oid), GONE,
                       {"op": "insert", "oid": oid, "type": type_name,
                        "value": value_to_json(value)},
                       ("del",))

    def on_store_update(self, oid, old_value, value) -> None:
        old_type = self.db.store.exact_type(oid)
        self._mutation(("obj", oid), (old_value, old_type),
                       {"op": "update", "oid": oid,
                        "value": value_to_json(value)},
                       ("set", old_value))

    def on_store_delete(self, oid, old_value, old_type) -> None:
        self._mutation(("obj", oid), (old_value, old_type),
                       {"op": "delete", "oid": oid},
                       ("ins", old_type or DEFAULT_TYPE, old_value))

    def on_store_migrate(self, oid, old_type, new_type) -> None:
        value = self.db.store.get(oid)
        self._mutation(("obj", oid), (value, old_type),
                       {"op": "migrate", "oid": oid, "type": new_type},
                       ("type", old_type or DEFAULT_TYPE))

    def on_name_create(self, name, existed, old_value, value) -> None:
        self._mutation(("name", name),
                       old_value if existed else GONE,
                       {"op": "name", "name": name,
                        "value": value_to_json(value)},
                       ("nset", old_value) if existed else ("ndel",))

    def on_name_drop(self, name, old_value) -> None:
        self._mutation(("name", name), old_value,
                       {"op": "drop", "name": name},
                       ("nset", old_value))

    def log_ddl(self, payload: Dict[str, Any]) -> None:
        """Journal a schema change (type/method/created-type) for
        redo.  DDL is durable but not undoable — abort leaves it."""
        self._mutation(None, None, {"op": "ddl", "ddl": payload}, ("none",))

    # -- DDL capture -------------------------------------------------------

    def _wrap_ddl(self) -> None:
        """Instrument ``types.define`` and ``methods.define`` so schema
        changes reach the journal no matter which layer issues them.
        The wrappers consult ``db.journal`` at call time, so re-attaching
        a manager (or detaching one) needs no re-wrapping."""
        db = self.db
        from ..extra.ddl import ensure_type_system
        types = ensure_type_system(db)
        if not getattr(types, "_journal_wrapped", False):
            original_define = types.define

            def define(name, fields, parents=()):
                tuple_type = original_define(name, fields, parents)
                journal = getattr(db, "journal", None)
                if journal is not None:
                    journal.log_ddl({
                        "kind": "type", "name": name,
                        "parents": list(tuple_type.parents),
                        "fields": [[fname, ftype.describe()]
                                   for fname, ftype in tuple_type.own_fields],
                    })
                return tuple_type

            types.define = define
            types._journal_wrapped = True
        methods = db.methods
        if not getattr(methods, "_journal_wrapped", False):
            original_method = methods.define

            def define_method(type_name, name, params, body):
                method = original_method(type_name, name, params, body)
                journal = getattr(db, "journal", None)
                if journal is not None:
                    journal.log_ddl({
                        "kind": "method", "type": type_name, "name": name,
                        "params": list(params), "body": expr_to_json(body),
                    })
                return method

            methods.define = define_method
            methods._journal_wrapped = True

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "SnapshotView":
        """A stable read view of everything committed so far.  Open
        transactions (this manager's or later ones) are invisible."""
        SNAPSHOTS_TOTAL.inc()
        return SnapshotView(self, self.version)

    @property
    def index_epoch(self) -> int:
        """The index epoch: every commit (data or index DDL — both flow
        through :meth:`commit`) advances it, so equal epochs imply
        identical visible data *and* index definitions.  Snapshot index
        caches and the server's plan caches key on it."""
        return self.version

    def _pin(self, version: int) -> None:
        with self._pin_lock:
            self._pins[version] = self._pins.get(version, 0) + 1

    def _unpin(self, version: int) -> None:
        with self._pin_lock:
            n = self._pins.get(version, 0) - 1
            if n > 0:
                self._pins[version] = n
            else:
                self._pins.pop(version, None)
                # Last reader left this epoch: its index cache is
                # unreachable (a new snapshot would pin the *current*
                # version) unless the epoch is still current.
                if version != self.version:
                    self._epoch_indexes.pop(version, None)

    def oldest_pinned(self) -> Optional[int]:
        """The smallest version a live snapshot view is pinned to, or
        None when no views are live."""
        with self._pin_lock:
            return min(self._pins) if self._pins else None

    def _index_view(self, view: "SnapshotView"):
        """The frozen index-catalog view for *view* (see
        :class:`~repro.storage.indexes.IndexCatalogView`).  The caller
        has already pinned ``view.version``, so the epoch cache fetched
        here cannot be evicted while the view lives."""
        epoch = view.version
        with self._pin_lock:
            cache = self._epoch_indexes.setdefault(epoch, {})
        return self.db.indexes.snapshot_view(view, epoch, cache,
                                             self._index_build_lock)

    def _resolve(self, key, snap_version: int, current) -> Any:
        """The state of *key* as of *snap_version*: ``current`` (a
        thunk's value) when the live entry is committed and old enough,
        else the newest chain state visible at the snapshot, else
        :data:`GONE`."""
        cur_from = self._from.get(key, 0)
        if cur_from is not PENDING and cur_from <= snap_version:
            return current
        best = GONE
        for from_version, state in self._chain.get(key, ()):
            if from_version <= snap_version:
                best = state
            else:
                break
        return best

    def prune(self, version: Optional[int] = None) -> None:
        """Drop chain history no snapshot at or after *version*
        (default: the current committed version) can reach.

        The effective version is clamped to the oldest *pinned*
        version, so a long-running reader's history — and its epoch's
        snapshot index cache — is never freed under it; pruning tightens
        automatically as views are collected.  Only snapshot views older
        than the clamped version (i.e. ones already dead) lose state.
        """
        if version is None:
            version = self.version
        floor = self.oldest_pinned()
        if floor is not None and floor < version:
            version = floor
        with self._pin_lock:
            # Sweep index caches of epochs nobody is pinned to (their
            # normal eviction point is the last unpin, but an epoch
            # that never had a reader would otherwise linger).
            for epoch in list(self._epoch_indexes):
                if epoch != self.version and epoch not in self._pins:
                    del self._epoch_indexes[epoch]
        for key in list(self._chain):
            chain = self._chain[key]
            keep = 0
            for i, (from_version, _) in enumerate(chain):
                if from_version <= version:
                    keep = i
                else:
                    break
            if keep:
                del chain[:keep]

    # -- checkpoint & recovery --------------------------------------------

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Fold the log into a JSON snapshot: atomically write the
        snapshot (temp file + ``os.replace``), then truncate the log.
        A crash between the two steps merely replays transactions the
        snapshot already contains — replay is idempotent."""
        if self.active is not None:
            raise TxnError("cannot checkpoint with an active transaction")
        path = path or self.snapshot_path
        if path is None:
            raise TxnError("checkpoint needs a snapshot path")
        from .persist import save_database
        save_database(self.db, path)
        if self.wal is not None:
            self.wal.truncate()
        return path

    def recover(self, records: List[Dict[str, Any]]) -> int:
        """Redo committed transactions from *records* against this
        manager's database (journal suppressed).  Returns the number of
        transactions applied."""
        self._replaying = True
        try:
            return replay_log(self.db, records)
        finally:
            self._replaying = False


# ---------------------------------------------------------------------------
# Snapshot views
# ---------------------------------------------------------------------------

class SnapshotStore:
    """A read view of the object store frozen at a commit version.

    Reads resolve through the manager's version chains; the interface
    mirrors the parts of :class:`ObjectStore` the evaluators touch
    (``get``/``exact_type``/extents/``find_ref``).  ``insert`` (REF
    minting a *new* object mid-query) passes through to the live store:
    fresh OIDs cannot collide with anything the snapshot can see.
    """

    def __init__(self, manager: TransactionManager, version: int):
        self._manager = manager
        self._store = manager.db.store
        self.snapshot_version = version
        #: Constant cache key: a snapshot never changes, so a deref
        #: cache bound to this view stays valid across queries.
        self.version = ("snapshot", version)

    @property
    def hierarchy(self):
        return self._store.hierarchy

    @property
    def oids(self):
        return self._store.oids

    def _state(self, oid) -> Any:
        """(value, exact_type) at the snapshot, or GONE.

        Single ``get`` rather than ``in`` + ``[]``: the network server
        reads snapshots from reader threads while its writer thread
        mutates the live tables, and each dict access is GIL-atomic but
        a contains/getitem pair is not."""
        store = self._store
        key = ("obj", oid)
        value = store._objects.get(oid, _MISSING)
        if value is not _MISSING:
            current = (value, store._exact_types.get(oid))
        else:
            current = GONE
        return self._manager._resolve(key, self.snapshot_version, current)

    def get(self, oid: Any, default: Any = _MISSING) -> Any:
        state = self._state(oid)
        if state is not GONE:
            return state[0]
        if default is not _MISSING:
            return default
        raise StoreError("no object with OID %r" % (oid,))

    def __contains__(self, oid: Any) -> bool:
        return self._state(oid) is not GONE

    def exact_type(self, oid: Any) -> Optional[str]:
        state = self._state(oid)
        return None if state is GONE else state[1]

    def _members(self) -> Dict[Any, str]:
        # dict()/list() copies are single C-level ops under the GIL, so
        # the Python-level comprehensions below never iterate a table
        # the server's writer thread is resizing mid-walk.
        store = self._store
        touched = {key[1] for key in list(self._manager._from)
                   if key[0] == "obj"}
        members: Dict[Any, str] = {
            oid: t for oid, t in dict(store._exact_types).items()
            if oid not in touched}
        for oid in touched:
            state = self._state(oid)
            if state is not GONE:
                members[oid] = state[1]
        return members

    def extent(self, type_name: str):
        from ..core.values import Ref
        return [Ref(oid, type_name)
                for oid, t in self._members().items() if t == type_name]

    def extent_closure(self, type_name: str):
        from ..core.values import Ref
        wanted = self.hierarchy.descendants_or_self(type_name)
        return [Ref(oid, t)
                for oid, t in self._members().items() if t in wanted]

    def find_ref(self, value: Any):
        found = self._store.find_ref(value)
        if found is None:
            return None
        state = self._state(found.oid)
        if state is not GONE and state[0] == value:
            return found
        return None

    def insert(self, value: Any, type_name: str = None):
        return self._store.insert(value, type_name)

    def __len__(self) -> int:
        return len(self._members())


class _SnapshotNamed:
    """Mapping view of the named top-level objects at a version."""

    def __init__(self, manager: TransactionManager, version: int):
        self._manager = manager
        self._version = version

    def _state(self, name: str) -> Any:
        current = self._manager.db._named.get(name, GONE)
        return self._manager._resolve(("name", name), self._version, current)

    def __getitem__(self, name: str) -> Any:
        state = self._state(name)
        if state is GONE:
            raise KeyError(name)
        return state

    def get(self, name: str, default: Any = None) -> Any:
        state = self._state(name)
        return default if state is GONE else state

    def __contains__(self, name: str) -> bool:
        return self._state(name) is not GONE

    def keys(self) -> List[str]:
        candidates = set(list(self._manager.db._named))
        candidates.update(key[1] for key in list(self._manager._chain)
                          if key[0] == "name")
        return sorted(n for n in candidates if n in self)

    def __iter__(self):
        return iter(self.keys())


#: Live snapshot views, process-wide and weakly held — drops views as
#: they are garbage collected, so the gauges below track reality
#: without any explicit close() discipline on readers.
_LIVE_VIEWS: "weakref.WeakSet[SnapshotView]" = weakref.WeakSet()

SNAPSHOT_VIEWS_LIVE.set_provider(lambda: float(len(_LIVE_VIEWS)))
SNAPSHOT_OLDEST_AGE_SECONDS.set_provider(
    lambda: max((time.time() - view.created_at for view in _LIVE_VIEWS),
                default=0.0))

#: Live transaction managers, weakly held, backing the index-epoch
#: gauge (the most advanced manager's committed version).
_LIVE_MANAGERS: "weakref.WeakSet[TransactionManager]" = weakref.WeakSet()

INDEX_EPOCH.set_provider(
    lambda: max((float(m.version) for m in _LIVE_MANAGERS), default=0.0))


class SnapshotView:
    """A consistent read view: store + named objects at one version.

    ``context()`` builds an :class:`EvalContext` over the view, so any
    algebra tree — interpreted or compiled — evaluates against the
    frozen state while the live database keeps moving.  The context
    carries the view's :class:`~repro.storage.indexes.IndexCatalogView`,
    so cost-based index probes work against the snapshot (answers are
    built from the frozen collections, never the live catalog).

    A view *pins* its version for its lifetime: :meth:`prune` will not
    free chain history (or the epoch's shared index cache) the view can
    still reach; the pin is dropped by a weakref finalizer when the
    view is garbage collected.
    """

    def __init__(self, manager: TransactionManager, version: int):
        self.manager = manager
        self.version = version
        self.store = SnapshotStore(manager, version)
        self.named = _SnapshotNamed(manager, version)
        self.created_at = time.time()
        manager._pin(version)
        self._finalizer = weakref.finalize(self, manager._unpin, version)
        self.indexes = manager._index_view(self)
        _LIVE_VIEWS.add(self)

    def get(self, name: str) -> Any:
        try:
            return self.named[name]
        except KeyError:
            raise StoreError("no top-level object named %r" % name)

    def names(self) -> List[str]:
        return self.named.keys()

    def context(self) -> EvalContext:
        db = self.manager.db
        return EvalContext(database=self.named, store=self.store,
                           functions=db.functions, methods=db.methods,
                           indexes=self.indexes)

    def __repr__(self) -> str:
        return "<SnapshotView @v%d>" % self.version


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

def _redo(db: Database, record: Dict[str, Any]) -> None:
    op = record.get("op")
    store = db.store
    if op == "insert":
        store._apply_insert(record["oid"], record.get("type") or DEFAULT_TYPE,
                            value_from_json(record["value"]))
    elif op == "update":
        store._apply_update(record["oid"], value_from_json(record["value"]))
    elif op == "delete":
        store._apply_delete(record["oid"])
    elif op == "migrate":
        store._apply_migrate(record["oid"], record["type"])
    elif op == "name":
        db._named[record["name"]] = value_from_json(record["value"])
        db.indexes.invalidate(record["name"])
    elif op == "drop":
        db._named.pop(record["name"], None)
        db.indexes.invalidate(record["name"])
    elif op == "ddl":
        _redo_ddl(db, record["ddl"])
    # Unknown ops are skipped: logs written by a newer build replay
    # what this build understands.


def _redo_ddl(db: Database, payload: Dict[str, Any]) -> None:
    from ..extra.ddl import ensure_type_system, parse_type_expr
    from ..lang import Lexer
    kind = payload.get("kind")
    types = ensure_type_system(db)
    if kind == "type":
        if payload["name"] in types:
            return  # already present (checkpoint overlap)
        types.define(payload["name"],
                     [(fname, parse_type_expr(Lexer(ftext), types))
                      for fname, ftext in payload["fields"]],
                     payload["parents"])
    elif kind == "method":
        db.methods.define(payload["type"], payload["name"],
                          payload["params"], expr_from_json(payload["body"]))
    elif kind == "created_type":
        created = getattr(db, "created_types", None)
        if created is None:
            created = db.created_types = {}
        created[payload["name"]] = parse_type_expr(Lexer(payload["type"]),
                                                   types)
    elif kind == "index_create":
        db.indexes.restore([payload["index"]])
    elif kind == "index_drop":
        db.indexes.remove_definition(payload["index"])


def replay_log(db: Database, records: List[Dict[str, Any]]) -> int:
    """Apply the committed transactions in *records* to *db*.

    Records of a transaction whose commit record never made it to disk
    are discarded — recovery restores exactly the committed prefix.
    Returns the number of transactions applied.
    """
    applied = 0
    pending: Optional[List[Dict[str, Any]]] = None
    for record in records:
        op = record.get("op")
        if op == "begin":
            pending = []
        elif op == "commit":
            if pending is None:
                continue  # stray commit without begin: ignore
            for buffered in pending:
                _redo(db, buffered)
            oids = record.get("oids")
            if oids:
                db.store.oids.restore(oids)
            pending = None
            applied += 1
        elif op == "checkpoint":
            continue
        elif pending is not None:
            pending.append(record)
    return applied


def open_database(directory: str,
                  functions: Optional[Dict[str, Any]] = None,
                  sync: bool = True) -> Database:
    """Open (or create) a durable database rooted at *directory*.

    Layout: ``directory/snapshot.json`` (the checkpointed world, when
    one exists) and ``directory/wal.log``.  The snapshot is loaded,
    the log's committed transactions are replayed on top, any torn log
    tail is truncated, and a :class:`TransactionManager` with the open
    WAL is attached (reachable as ``db.txn``).
    """
    os.makedirs(directory, exist_ok=True)
    snapshot_path = os.path.join(directory, "snapshot.json")
    wal_path = os.path.join(directory, "wal.log")
    if os.path.exists(snapshot_path):
        from .persist import load_database
        db = load_database(snapshot_path, functions)
    else:
        db = Database()
        from ..excess.builtins import register_builtins
        register_builtins(db)
        for name, fn in (functions or {}).items():
            db.register_function(name, fn)
    replay_log(db, read_records(wal_path))
    wal = WriteAheadLog(wal_path, sync=sync)
    TransactionManager(db, wal=wal, snapshot_path=snapshot_path)
    return db
