"""Database persistence: save/load the whole EXTRA world to JSON.

EXTRA provides "support for persistent structures of any type definable
in the EXTRA type system"; the paper's system delegated durability to
the EXODUS storage manager.  Here a database round-trips through a
single JSON document containing:

* the type hierarchy (in topological order) and every EXTRA tuple-type
  definition (field types serialized as EXTRA type-expression text and
  re-parsed on load — the DDL grammar is its own schema language);
* the OID generator's f-codes and counters (so identity survives and
  future allocations don't collide);
* the object store (oid, exact type, value) and every named top-level
  object, via the tagged value encoding;
* stored methods — their *algebraic query trees* serialize node by
  node, so "plugging in" keeps working after a reload;
* the names of registered scalar functions (Python callables cannot be
  serialized; they are re-registered by name — builtins automatically,
  user functions via the ``functions`` argument of :func:`load_database`).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional

from ..core.serialize import (expr_to_json, expr_from_json, value_from_json,
                              value_to_json)
from .store import Database


class PersistError(ValueError):
    """Malformed snapshot or unresolvable reference during load."""


FORMAT_VERSION = 1


def database_to_json(db: Database) -> Dict[str, Any]:
    """The snapshot document for *db* (pure data, json.dump-able)."""
    hierarchy = db.hierarchy
    types = getattr(db, "types", None)
    snapshot: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "hierarchy": [
            {"name": name, "parents": hierarchy.parents(name)}
            for name in hierarchy.topological()],
        "oids": db.store.oids.snapshot(),
        "objects": [
            {"oid": oid, "type": db.store.exact_type(oid),
             "value": value_to_json(db.store.get(oid))}
            for oid in sorted(db.store._objects)],
        "named": [
            {"name": name, "value": value_to_json(db.get(name))}
            for name in db.names()],
        "created_types": [
            {"name": name, "type": type_expr.describe()}
            for name, type_expr in sorted(
                getattr(db, "created_types", {}).items())
            if type_expr is not None],
        "types": [],
        "methods": [],
        "functions": sorted(db.functions),
        "indexes": db.indexes.definitions(),
    }
    if types is not None:
        # Topological order so parents are re-defined before children.
        for name in hierarchy.topological():
            if name not in types:
                continue
            tuple_type = types.require(name)
            snapshot["types"].append({
                "name": name,
                "parents": list(tuple_type.parents),
                "fields": [[fname, ftype.describe()]
                           for fname, ftype in tuple_type.own_fields],
            })
    if db.methods is not None:
        for (type_name, method_name), method in sorted(
                db.methods._methods.items()):
            snapshot["methods"].append({
                "type": type_name, "name": method_name,
                "params": list(method.params),
                "body": expr_to_json(method.body),
            })
    return snapshot


def database_from_json(snapshot: Dict[str, Any],
                       functions: Optional[Dict[str, Callable]] = None
                       ) -> Database:
    """Rebuild a database from a snapshot document."""
    if snapshot.get("format") != FORMAT_VERSION:
        raise PersistError("unsupported snapshot format %r"
                           % snapshot.get("format"))
    db = Database()
    hierarchy = db.hierarchy
    for entry in snapshot["hierarchy"]:
        if entry["name"] not in hierarchy:
            hierarchy.add_type(entry["name"], entry["parents"])

    # EXTRA tuple types, re-parsed from their own DDL text.
    if snapshot["types"]:
        from ..extra.ddl import ensure_type_system, parse_type_expr
        from ..lang import Lexer
        types = ensure_type_system(db)
        for entry in snapshot["types"]:
            types.define(entry["name"],
                         [(fname, parse_type_expr(Lexer(ftext), types))
                          for fname, ftext in entry["fields"]],
                         entry["parents"])

    db.store.oids.restore(snapshot["oids"])
    for entry in snapshot["objects"]:
        oid = entry["oid"]
        db.store._objects[oid] = value_from_json(entry["value"])
        db.store._exact_types[oid] = entry["type"]
        db.store._by_value.setdefault(db.store._objects[oid], oid)

    for entry in snapshot["named"]:
        db.create(entry["name"], value_from_json(entry["value"]))

    if snapshot["created_types"]:
        from ..extra.ddl import ensure_type_system, parse_type_expr
        from ..lang import Lexer
        types = ensure_type_system(db)
        db.created_types = {
            entry["name"]: parse_type_expr(Lexer(entry["type"]), types)
            for entry in snapshot["created_types"]}

    for entry in snapshot["methods"]:
        db.methods.define(entry["type"], entry["name"], entry["params"],
                          expr_from_json(entry["body"]))

    # Re-register functions: builtins always, user functions as given.
    from ..excess.builtins import register_builtins
    register_builtins(db)
    for name, fn in (functions or {}).items():
        db.register_function(name, fn)
    missing = [name for name in snapshot["functions"]
               if name not in db.functions]
    if missing:
        db.missing_functions = missing  # surfaced, not fatal

    # Rebuild access methods last: keyed/ordered indexes evaluate their
    # key expressions, which may call the functions registered just
    # above.  ``restore`` re-registers definitions without journaling
    # and handles every kind (typed, keyed, ordered).
    db.indexes.restore(snapshot.get("indexes", []))
    return db


def save_database(db: Database, path: str) -> None:
    """Write *db* to *path* as JSON — crash-safely.

    The document goes to a temporary sibling file which is fsynced and
    then atomically renamed over *path*, so a failure at any point
    (serialization error, full disk, crash mid-write) leaves the
    previous snapshot untouched.
    """
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w") as handle:
            json.dump(database_to_json(db), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def load_database(path: str,
                  functions: Optional[Dict[str, Callable]] = None
                  ) -> Database:
    """Load a database previously written by :func:`save_database`."""
    with open(path) as handle:
        snapshot = json.load(handle)
    return database_from_json(snapshot, functions)
