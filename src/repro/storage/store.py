"""The object store: OID table, extents, and named top-level objects.

EXTRA objects with identity live "in the database independently of
objects that reference them".  This module provides that substrate for
the algebra: a table from OID to value, exact-type bookkeeping (for
typed SET_APPLY dispatch and for type migration), per-type extents, and
the named persistent objects created by EXTRA's ``create`` statement.

The paper ran on the EXODUS storage manager; a dictionary-backed store
preserves every behaviour the algebra observes (identity, dereferencing,
extents, dangling references) without the disk machinery.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Set

from ..core.expr import EvalContext
from ..core.hierarchy import TypeHierarchy
from ..core.oid import OIDError, OIDGenerator
from ..core.values import Arr, MultiSet, Ref, Tup

#: Exact type recorded for objects inserted without one.
DEFAULT_TYPE = "Object"

_MISSING = object()


class StoreError(KeyError):
    """Raised for unknown OIDs or illegal store operations."""


class ObjectStore:
    """A value store keyed by OID, with exact-type tracking.

    Parameters
    ----------
    hierarchy:
        The type hierarchy OIDs are allocated against.  A fresh one (with
        just the default root type) is created when omitted; unknown type
        names are auto-registered as roots so ad-hoc use stays ergonomic.
    oid_generator:
        Generator implementing the paper's prefix construction; created
        from *hierarchy* when omitted.
    """

    def __init__(self, hierarchy: TypeHierarchy = None,
                 oid_generator: OIDGenerator = None):
        self.hierarchy = hierarchy or TypeHierarchy()
        if DEFAULT_TYPE not in self.hierarchy:
            self.hierarchy.add_type(DEFAULT_TYPE)
        self.oids = oid_generator or OIDGenerator(self.hierarchy)
        self._objects: Dict[Any, Any] = {}
        self._exact_types: Dict[Any, str] = {}
        self._by_value: Dict[Any, Any] = {}  # value -> one representative oid
        #: Invalidation counter for deref caches: bumped whenever an
        #: *existing* object changes (update/delete/migrate, and the
        #: raw replay/undo mutations).  Fresh inserts don't bump it —
        #: a new OID cannot collide with anything a cache has seen.
        self.version = 0
        # ``version += 1`` is a read-modify-write, not GIL-atomic; the
        # server's writer thread and replay/undo paths may race reader
        # threads validating deref caches, so bumps go through a lock
        # (reads stay bare — a plain int load is atomic).
        self._version_lock = threading.Lock()
        #: Transaction journal (see :mod:`repro.storage.txn`); when set,
        #: every mutation is reported with enough old state to undo it.
        self.journal = None

    def _bump_version(self) -> None:
        with self._version_lock:
            self.version += 1

    # -- basic object lifecycle ----------------------------------------

    def _ensure_type(self, type_name: str) -> str:
        if type_name is None:
            return DEFAULT_TYPE
        if type_name not in self.hierarchy:
            self.hierarchy.add_type(type_name)
        return type_name

    def insert(self, value: Any, type_name: str = None) -> Ref:
        """Create a new object holding *value*; returns its reference."""
        type_name = self._ensure_type(type_name)
        ref = self.oids.new_ref(type_name)
        self._objects[ref.oid] = value
        self._exact_types[ref.oid] = type_name
        self._by_value.setdefault(value, ref.oid)
        if self.journal is not None:
            self.journal.on_store_insert(ref.oid, type_name, value)
        return ref

    def get(self, oid: Any, default: Any = _MISSING) -> Any:
        """The value of object *oid*; *default* (if given) when dangling."""
        found = self._objects.get(oid, _MISSING)
        if found is not _MISSING:
            return found
        if default is not _MISSING:
            return default
        raise StoreError("no object with OID %r" % (oid,))

    def reader(self):
        """A ``(oid, default) -> value`` bulk-lookup fast path.

        The batch engine derefs whole columns of OIDs in a tight loop;
        handing it the backing dict's ``get`` skips a Python frame per
        probe.  Stores without this method (snapshot views, guarded
        wrappers) fall back to their ordinary ``get``.
        """
        return self._objects.get

    def exact_reader(self):
        """An ``oid -> exact type (or None)`` fast path; the dispatch
        twin of :meth:`reader` (grouped method dispatch resolves the
        exact type of whole receiver columns)."""
        return self._exact_types.get

    def __contains__(self, oid: Any) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def update(self, oid: Any, value: Any) -> None:
        """Replace the value of an existing object, keeping its identity."""
        if oid not in self._objects:
            raise StoreError("no object with OID %r" % (oid,))
        old = self._objects[oid]
        if self._by_value.get(old) == oid:
            del self._by_value[old]
        self._objects[oid] = value
        self._by_value.setdefault(value, oid)
        self._bump_version()
        if self.journal is not None:
            self.journal.on_store_update(oid, old, value)

    def delete(self, oid: Any) -> None:
        """Remove an object.  References to it become dangling (DEREF
        of a dangling reference yields ``dne``)."""
        if oid not in self._objects:
            raise StoreError("no object with OID %r" % (oid,))
        old = self._objects.pop(oid)
        old_type = self._exact_types.pop(oid, None)
        if self._by_value.get(old) == oid:
            del self._by_value[old]
        self._bump_version()
        if self.journal is not None:
            self.journal.on_store_delete(oid, old, old_type)

    # -- raw mutations (replay / rollback) -------------------------------
    #
    # These mirror insert/update/delete/migrate but take the OID as
    # given, never consult the journal, and tolerate re-application —
    # exactly what WAL redo (which may overlap a checkpoint snapshot)
    # and transaction undo need.  All of them bump ``version`` because
    # they can resurrect or rewrite OIDs a deref cache may have seen.

    def _apply_insert(self, oid: Any, type_name: str, value: Any) -> None:
        type_name = self._ensure_type(type_name)
        old = self._objects.get(oid, _MISSING)
        if old is not _MISSING and self._by_value.get(old) == oid:
            del self._by_value[old]
        self._objects[oid] = value
        self._exact_types[oid] = type_name
        self._by_value.setdefault(value, oid)
        self._bump_version()

    def _apply_update(self, oid: Any, value: Any) -> None:
        self._apply_insert(oid, self._exact_types.get(oid, DEFAULT_TYPE),
                           value)

    def _apply_delete(self, oid: Any) -> None:
        old = self._objects.pop(oid, _MISSING)
        self._exact_types.pop(oid, None)
        if old is not _MISSING and self._by_value.get(old) == oid:
            del self._by_value[old]
        self._bump_version()

    def _apply_migrate(self, oid: Any, type_name: str) -> None:
        if oid in self._objects:
            self._exact_types[oid] = self._ensure_type(type_name)
        self._bump_version()

    # -- identity & typing ----------------------------------------------

    def find_ref(self, value: Any) -> Optional[Ref]:
        """A reference to some extant object with this exact value.

        Supports REF's inverse role (rule 28); returns None when no such
        object exists.
        """
        oid = self._by_value.get(value)
        if oid is None:
            return None
        return Ref(oid, self._exact_types.get(oid))

    def exact_type(self, oid: Any) -> Optional[str]:
        """The exact (allocation or migrated-to) type of *oid*."""
        return self._exact_types.get(oid)

    def migrate(self, oid: Any, new_type: str) -> None:
        """Type migration (end of Section 3.1).

        Legal exactly when the OID is already a member of
        Odom(new_type) — i.e. within the descendant cone of the pool the
        OID was drawn from — so identity is preserved and no reference
        anywhere becomes ill-typed.
        """
        if oid not in self._objects:
            raise StoreError("no object with OID %r" % (oid,))
        new_type = self._ensure_type(new_type)
        if not self.oids.migrate_ok(oid, new_type):
            raise OIDError(
                "OID %r is not in Odom(%s); migration would forge identity"
                % (oid, new_type))
        old_type = self._exact_types.get(oid)
        self._exact_types[oid] = new_type
        self._bump_version()
        if self.journal is not None:
            self.journal.on_store_migrate(oid, old_type, new_type)

    # -- extents -----------------------------------------------------------

    def extent(self, type_name: str) -> List[Ref]:
        """References to all objects whose *exact* type is *type_name*."""
        return [Ref(oid, type_name)
                for oid, t in self._exact_types.items() if t == type_name]

    def extent_closure(self, type_name: str) -> List[Ref]:
        """References to all objects of *type_name* or any subtype."""
        members = self.hierarchy.descendants_or_self(type_name)
        return [Ref(oid, t)
                for oid, t in self._exact_types.items() if t in members]

    # -- integrity ---------------------------------------------------------

    def _refs_in(self, value: Any) -> Iterator[Ref]:
        if isinstance(value, Ref):
            yield value
        elif isinstance(value, Tup):
            for _, v in value.fields:
                for r in self._refs_in(v):
                    yield r
        elif isinstance(value, (MultiSet, Arr)):
            for v in value:
                for r in self._refs_in(v):
                    yield r

    def dangling_refs(self) -> List[Ref]:
        """Every reference reachable from stored values whose target is
        gone.  Useful for failure-injection tests."""
        out = []
        for value in self._objects.values():
            for ref in self._refs_in(value):
                if ref.oid not in self._objects:
                    out.append(ref)
        return out


class Database:
    """Named, persistent top-level objects over an :class:`ObjectStore`.

    This models EXTRA's ``create`` statement: a database is a collection
    of named structures (Employees, Departments, TopTen, …), any of which
    may contain references into the shared store.
    """

    def __init__(self, store: ObjectStore = None):
        self.store = store or ObjectStore()
        self._named: Dict[str, Any] = {}
        #: Transaction journal shared with ``store.journal``; set by
        #: :class:`repro.storage.txn.TransactionManager` on attach.
        self.journal = None
        #: The attached transaction manager, if any (see :meth:`begin`).
        self.txn = None
        self.functions: Dict[str, Any] = {}
        #: Declared type signatures for registered functions, consumed by
        #: the static analysis layer: name → SchemaNode | callable
        #: (arg_schemas → SchemaNode) | None (opaque).
        self.function_signatures: Dict[str, Any] = {}
        from ..core.methods import MethodRegistry
        self.methods = MethodRegistry(self.store.hierarchy)
        from .indexes import IndexCatalog
        self.indexes = IndexCatalog(self)
        #: Optional :class:`repro.obs.Tracer` set by the connection
        #: layer; storage-side spans (WAL commits) and every context
        #: built via :meth:`context` pick it up from here.
        self.tracer = None

    @property
    def hierarchy(self) -> TypeHierarchy:
        return self.store.hierarchy

    def create(self, name: str, value: Any) -> None:
        """Create (or replace) a named top-level object."""
        old = self._named.get(name, _MISSING)
        self._named[name] = value
        self.indexes.invalidate(name)
        if self.journal is not None:
            self.journal.on_name_create(name, old is not _MISSING,
                                        None if old is _MISSING else old,
                                        value)

    def drop(self, name: str) -> None:
        if name not in self._named:
            raise StoreError("no top-level object named %r" % name)
        old = self._named.pop(name)
        self.indexes.invalidate(name)
        if self.journal is not None:
            self.journal.on_name_drop(name, old)

    # -- transactions ------------------------------------------------------

    def transactions(self, wal=None):
        """The attached transaction manager, creating an in-memory one
        (no WAL) on first use.  Pass *wal* to make the first attach
        durable; see :func:`repro.storage.txn.open_database` for the
        snapshot + log + recovery packaging."""
        if self.txn is None:
            from .txn import TransactionManager
            TransactionManager(self, wal=wal)  # attaches itself as self.txn
        return self.txn

    def begin(self):
        """Begin an explicit transaction (attaching a manager if needed)."""
        return self.transactions().begin()

    def commit(self) -> None:
        self.transactions().commit()

    def abort(self) -> None:
        self.transactions().abort()

    def get(self, name: str) -> Any:
        try:
            return self._named[name]
        except KeyError:
            raise StoreError("no top-level object named %r" % name)

    def names(self) -> List[str]:
        return sorted(self._named)

    def __contains__(self, name: str) -> bool:
        return name in self._named

    def register_function(self, name: str, fn, signature: Any = None) -> None:
        """Register a scalar function (the E-language ADT stand-in).

        *signature*, when given, declares the result schema for the
        static analysis layer: either a fixed
        :class:`~repro.core.schema.SchemaNode` or a callable taking the
        list of argument schemas.  Functions registered without one are
        opaque to inference (the linter reports them as L106).
        """
        self.functions[name] = fn
        if signature is not None:
            self.function_signatures[name] = signature

    def context(self) -> EvalContext:
        """An evaluation context bound to this database."""
        ctx = EvalContext(database=self._named, store=self.store,
                          functions=self.functions, methods=self.methods,
                          indexes=self.indexes)
        ctx.tracer = self.tracer
        return ctx
