"""Object store, named database objects, and access methods."""

from .indexes import IndexCatalog, KeyIndex, TypedPartitionIndex
from .persist import (PersistError, database_from_json, database_to_json,
                      load_database, save_database)
from .store import DEFAULT_TYPE, Database, ObjectStore, StoreError

__all__ = ["ObjectStore", "Database", "StoreError", "DEFAULT_TYPE",
           "IndexCatalog", "KeyIndex", "TypedPartitionIndex",
           "save_database", "load_database", "database_to_json",
           "database_from_json", "PersistError"]
