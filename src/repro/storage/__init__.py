"""Object store, named database objects, access methods, durability."""

from .indexes import (IndexCatalog, KeyIndex, OrderedIndex,
                      TypedPartitionIndex)
from .persist import (PersistError, database_from_json, database_to_json,
                      load_database, save_database)
from .store import DEFAULT_TYPE, Database, ObjectStore, StoreError
from .txn import (SnapshotView, TransactionManager, TxnError, open_database,
                  replay_log)
from .wal import WalError, WriteAheadLog, read_records

__all__ = ["ObjectStore", "Database", "StoreError", "DEFAULT_TYPE",
           "IndexCatalog", "KeyIndex", "OrderedIndex",
           "TypedPartitionIndex",
           "save_database", "load_database", "database_to_json",
           "database_from_json", "PersistError",
           "TransactionManager", "TxnError", "SnapshotView", "open_database",
           "replay_log", "WriteAheadLog", "WalError", "read_records"]
