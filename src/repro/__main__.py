"""Entry point: ``python -m repro`` starts the EXCESS shell."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
