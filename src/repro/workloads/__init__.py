"""Synthetic workload generators for the benchmarks and examples."""

from .university import (CITIES, DIVISIONS, FIGURE_1_DDL, University,
                         build_university)

__all__ = ["build_university", "University", "FIGURE_1_DDL", "CITIES",
           "DIVISIONS"]
