"""Section 4 workload: overridden methods over a heterogeneous set P.

Reproduces the paper's setting exactly:

* ``create P : { Person }`` where P holds Person, Student, and Employee
  *structures* (substitutability);
* the cheap ``boss`` method — "at most a DEREF and a TUP_EXTRACT" per
  body — overridden on Student (advisor's name) and Employee (manager's
  name);
* the expensive ``rich_subords`` method, whose Employee override scans
  the ``sub_ords`` component set ("much larger than the containing
  set"), the case where the ⊎-based approach pays off because the
  per-branch bodies dominate and can be optimized at compile time.

The expensive bodies are deliberately written with a redundant DE —
the kind of slack a stored, black-box method keeps forever but that the
⊎-plan's inlined bodies lose to rule X1 under the optimizer.
"""

from __future__ import annotations

from typing import List

from ..core.expr import Const, Input, Named
from ..core.methods import build_union_plan, switch_table_plan
from ..core.operators import (DE, Deref, SetApply, TupExtract, sigma)
from ..core.predicates import Atom
from ..core.values import MultiSet, Tup
from .university import University


def build_population(uni: University) -> MultiSet:
    """P : { Person } — materialized tuples of all three exact types."""
    store = uni.db.store
    people: List[Tup] = []
    for ref in uni.employee_refs:
        people.append(store.get(ref.oid))
    for ref in uni.student_refs:
        people.append(store.get(ref.oid))
    # Plain Persons (neither students nor employees): synthesize from
    # employee kids, which are Person-typed values already.
    for ref in uni.employee_refs:
        for kid in store.get(ref.oid)["kids"]:
            people.append(kid)
    population = MultiSet(people)
    uni.db.create("P", population)
    return population


def define_boss_methods(uni: University) -> None:
    """The cheap overridden method of Section 4's trade-off example."""
    methods = uni.db.methods
    methods.define("Person", "boss", [], TupExtract("name", Input()))
    methods.define("Employee", "boss", [],
                   TupExtract("name", Deref(TupExtract("manager", Input()))))
    methods.define("Student", "boss", [],
                   TupExtract("name", Deref(TupExtract("advisor", Input()))))


def define_rich_subords_methods(uni: University,
                                threshold: int = 60000) -> None:
    """The expensive overridden method: the Employee body scans
    sub_ords; Person/Student degenerate to an empty set.

    Every body carries a redundant double-DE, standing in for the
    optimizable slack the paper wants the ⊎-plan to expose.
    """
    methods = uni.db.methods
    empty = DE(DE(Const(MultiSet())))
    methods.define("Person", "rich_subords", [], empty)
    methods.define("Student", "rich_subords", [], empty)
    subords_names = SetApply(
        TupExtract("name", Input()),
        sigma(Atom(TupExtract("salary", Input()), ">", Const(threshold)),
              SetApply(Deref(Input()), TupExtract("sub_ords", Input()))))
    methods.define("Employee", "rich_subords", [], DE(DE(subords_names)))


def switch_plan(method: str):
    """Strategy 1: run-time switch-table dispatch over P."""
    return switch_table_plan(method, [], Named("P"))


def union_plan(uni: University, method: str, collapse: bool = True,
               use_index: bool = False):
    """Strategy 2: the ⊎-based compile-time plan of Figure 5."""
    return build_union_plan(uni.db.methods, "Person", method, [],
                            Named("P"), collapse_identical=collapse,
                            use_index="P" if use_index else None)
