"""Seeded random plan generation and the sanitizer differential sweep.

Two consumers share this module:

* the test suite (``tests/analysis/test_sanitizer.py``) runs the
  240-plan differential — every generated plan must produce
  bit-identical values whether the abstract interpreter's facts are
  consumed as optimization licenses, checked as runtime assertions, or
  ignored entirely;
* ``python -m repro.cli sanitize`` runs the same sweep (plus the
  paper-figure queries over the university database) as a standalone
  command with a nonzero exit status on any violation, so CI can gate
  on it.

The grammar is sort-directed (every plan is well-formed) and
deliberately hostile: ``unk`` occurrences and ``unk``/``dne`` tuple
fields, dangling references, duplicate cardinalities, nested multisets,
typed SET_APPLY filtering, method dispatch over an inheritance
hierarchy, and array subscripts that stray out of bounds.  REF is
excluded — it mints OIDs, so occurrence-level identity need not line up
across engines.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from ..core.expr import Const, Expr, Input, Named, evaluate
from ..core.methods import switch_table_plan
from ..core.operators import (DE, AddUnion, ArrCat, ArrExtract, Comp, Cross,
                              Deref, Diff, Grp, Pi, SetApply, SetCollapse,
                              SetCreate, SubArr, TupCat, TupCreate,
                              TupExtract, rel_join)
from ..core.predicates import And, Atom, Not, TruePred
from ..core.values import DNE, UNK, Arr, MultiSet, Ref, Tup
from ..storage import Database

#: The canonical sweep size; tests parametrize over range(N_PLANS).
N_PLANS = 240

#: Size of the batch-stressing sweep (wide arrays, deep deref chains,
#: disjoint typed unions, skewed partition pools); tests parametrize
#: over range(N_BATCH_PLANS) with seeds offset by BATCH_SEED_BASE so
#: the two corpora never overlap.
N_BATCH_PLANS = 60
BATCH_SEED_BASE = 10_000

PERSON_FIELDS = ("name", "age", "city")
SCALARS = (1, 2, 3, 17, "Madison", "Lodi", UNK)


def build_fixture_db() -> Database:
    """The hostile fixture database the generated plans range over."""
    db = Database()
    h = db.hierarchy
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    h.add_type("Employee", ["Person"])

    people = []
    refs = []
    cities = ["Madison", "Lodi", "Monona", UNK]
    for i in range(14):
        exact = ("Person", "Student", "Employee")[i % 3]
        fields = {"name": "p%d" % (i % 9),  # collisions → duplicates
                  "age": (20 + i % 5) if i % 7 else UNK,
                  "city": cities[i % len(cities)]}
        if i % 6 == 5:
            fields["age"] = DNE  # a field that does-not-exist
        person = Tup(fields, type_name=exact)
        people.append(person)
        refs.append(db.store.insert(person, exact))
    refs.append(Ref("dangling-oid", "Person"))  # deref → dne → dropped

    db.create("People", MultiSet(people + people[:4]))  # duplicates
    db.create("Refs", MultiSet(refs))
    db.create("Nums", MultiSet([1, 2, 2, 3, 3, 3, UNK, 17]))
    db.create("Nested", MultiSet([MultiSet([1, 2]), MultiSet([2, 2, UNK]),
                                  MultiSet([])]))
    db.create("Cities", MultiSet([
        Tup({"cname": c, "tag": i % 2}) for i, c in
        enumerate(["Madison", "Lodi", "Madison", "Stoughton"])]))
    db.create("Letters", Arr(["a", "b", "c", "d", "e"]))
    db.create("Pair", Arr([10, 20]))

    db.methods.define("Person", "describe", [],
                      TupCreate("kind", Const("person")))
    db.methods.define("Student", "describe", [],
                      TupCreate("kind", TupExtract("name", Input())))
    db.methods.define("Person", "pay", ["bonus"],
                      TupExtract("age", Input()))

    # -- batch-stressing extensions (appended after the classic data so
    # the OIDs of the original 14 people are unchanged) ----------------

    # Deep deref chains: Link_i.next → Link_{i-1}; the chain ends on an
    # UNK next and one link points at a dangling reference, so deref
    # depth k crosses both null disciplines.
    h.add_type("Link")
    link_ref: Any = UNK
    link_refs = []
    for i in range(12):
        link = Tup({"tag": i, "next": link_ref}, type_name="Link")
        link_ref = db.store.insert(link, "Link")
        link_refs.append(link_ref)
    broken = Tup({"tag": 99, "next": Ref("dangling-link", "Link")},
                 type_name="Link")
    link_refs.append(db.store.insert(broken, "Link"))
    db.create("Links", MultiSet(link_refs))

    # Wide arrays: enough elements that one array spans whole batches
    # when exploded, with UNK occurrences in-band.
    db.create("WideArr", Arr([(i if i % 9 else UNK) for i in range(40)]))

    # Skewed partition pools: one OID pool (Student) dwarfs the others,
    # so R(n) partitioning under ``parallel`` produces unequal workers
    # and at least one near-empty partition.
    skewed = []
    for i in range(30):
        student = Tup({"name": "s%d" % (i % 4), "age": 18 + i % 3,
                       "city": "Madison"}, type_name="Student")
        skewed.append(db.store.insert(student, "Student"))
    lone = Tup({"name": "boss", "age": 60, "city": "Lodi"},
               type_name="Employee")
    skewed.append(db.store.insert(lone, "Employee"))
    db.create("SkewedRefs", MultiSet(skewed + skewed[:5]))  # duplicates
    return db


class PlanGen:
    """Sort-directed random plan generator over the fixture database."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def pick(self, options):
        return self.rng.choice(options)

    # -- scalar/tuple-valued expressions over INPUT = a person tuple ----

    def person_value(self, depth: int) -> Expr:
        if depth <= 0:
            return self.pick([Input(), TupExtract(self.pick(PERSON_FIELDS),
                                                  Input())])
        roll = self.rng.random()
        if roll < 0.35:
            return TupExtract(self.pick(PERSON_FIELDS), Input())
        if roll < 0.5:
            return Pi(sorted(self.rng.sample(PERSON_FIELDS,
                                             self.rng.randint(1, 2))),
                      Input())
        if roll < 0.65:
            return TupCreate(self.pick(["a", "b"]),
                             self.person_value(depth - 1))
        if roll < 0.8:
            return TupCat(TupCreate("l", TupExtract("name", Input())),
                          TupCreate("r", self.person_value(depth - 1)))
        return Input()

    def person_pred(self, depth: int):
        roll = self.rng.random()
        if roll < 0.45:
            return Atom(TupExtract(self.pick(PERSON_FIELDS), Input()),
                        self.pick(["=", "!=", "<", ">="]),
                        Const(self.pick(SCALARS)))
        if roll < 0.6 and depth > 0:
            return And(self.person_pred(depth - 1),
                       self.person_pred(depth - 1))
        if roll < 0.75 and depth > 0:
            return Not(self.person_pred(depth - 1))
        if roll < 0.85:
            return TruePred()
        return Atom(TupExtract("name", Input()), "=",
                    TupExtract("city", Input()))

    # -- multisets of person tuples ------------------------------------

    def person_set(self, depth: int) -> Expr:
        if depth <= 0:
            return self.pick([Named("People"),
                              SetApply(Deref(Input()), Named("Refs"))])
        roll = self.rng.random()
        src = self.person_set(depth - 1)
        if roll < 0.3:
            type_filter = self.pick([None, frozenset(["Student"]),
                                     frozenset(["Student", "Employee"])])
            return SetApply(self.person_value(depth - 1), src,
                            type_filter=type_filter) \
                if type_filter else SetApply(self.person_value(depth - 1),
                                             src)
        if roll < 0.5:
            return SetApply(Comp(self.person_pred(depth - 1), Input()), src)
        if roll < 0.6:
            return DE(src)
        if roll < 0.7:
            return AddUnion(src, self.person_set(depth - 1))
        if roll < 0.8:
            return Diff(src, self.person_set(depth - 1))
        if roll < 0.9:
            return switch_table_plan("describe", [], src)
        return SetApply(Input(), src)

    # -- arrays ---------------------------------------------------------

    def array_plan(self) -> Expr:
        """Array operators, including subscripts the analyzer must prove
        in or out of bounds (Letters has 5 elements, Pair has 2)."""
        roll = self.rng.random()
        if roll < 0.3:
            return ArrExtract(self.pick([1, 3, 5, "last", 7, 9]),
                              Named("Letters"))
        if roll < 0.5:
            lo = self.rng.randint(1, 4)
            return SubArr(lo, lo + self.rng.randint(0, 4), Named("Letters"))
        if roll < 0.7:
            return ArrCat(Named("Pair"), Named("Letters"))
        if roll < 0.85:
            return ArrExtract(self.pick([1, 2, 3]),
                              ArrCat(Named("Pair"), Named("Pair")))
        return SubArr(2, 2, ArrCat(Named("Letters"), Named("Pair")))

    # -- whole plans ----------------------------------------------------

    def plan(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.4:
            return self.person_set(self.rng.randint(1, 3))
        if roll < 0.48:
            return Grp(TupExtract("city", Input()),
                       self.person_set(self.rng.randint(0, 2)))
        if roll < 0.55:
            return SetCollapse(Named("Nested"))
        if roll < 0.6:
            return SetCreate(Const(self.pick(SCALARS)))
        if roll < 0.66:
            return DE(Named("Nums"))
        if roll < 0.74:
            return Cross(SetApply(TupCreate("n", TupExtract("name", Input())),
                                  self.person_set(0)),
                         Named("Cities"))
        if roll < 0.82:
            return rel_join(
                Atom(TupExtract("city", TupExtract("field1", Input())), "=",
                     TupExtract("cname", TupExtract("field2", Input()))),
                self.person_set(self.rng.randint(0, 1)), Named("Cities"))
        if roll < 0.92:
            return self.array_plan()
        return SetApply(
            Comp(Atom(Input(), self.pick(["=", "!=", "<"]),
                      Const(self.pick([2, 3, 17]))), Input()),
            Named("Nums"))


def generate_plan(seed: int) -> Expr:
    """The canonical plan for one seed (deterministic)."""
    return PlanGen(random.Random(seed)).plan()


class BatchPlanGen(PlanGen):
    """Plans that stress the batched engine's distinctive machinery:
    wide arrays (one value spanning whole batches), deep deref chains
    (suffix memoization and the deref LRU), pairwise-disjoint typed
    unions over one extent (the fused union scan), and scans over a
    skewed extent (unequal R(n) partition pools under ``parallel``)."""

    def deref_chain(self) -> Expr:
        """tag-of-next^k over the Links chain: k nested derefs per
        element, crossing an UNK tail and a dangling link."""
        depth = self.rng.randint(1, 5)
        body: Expr = Deref(Input())
        for _ in range(depth):
            body = Deref(TupExtract("next", body))
        body = TupExtract(self.pick(["tag", "next"]), body)
        return SetApply(body, Named("Links"))

    def wide_array_plan(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.3:
            lo = self.rng.randint(1, 30)
            return SubArr(lo, lo + self.rng.randint(0, 20),
                          Named("WideArr"))
        if roll < 0.5:
            return ArrExtract(self.pick([1, 9, 40, "last", 41]),
                              Named("WideArr"))
        if roll < 0.75:
            return ArrCat(Named("WideArr"), Named("Pair"))
        return SubArr(35, 45, ArrCat(Named("WideArr"), Named("Letters")))

    def disjoint_union(self) -> Expr:
        """A ⊎-tree of typed SET_APPLY branches over People with
        pairwise-disjoint filters — the shape the batched engine fuses
        into a single scan.  Bodies are error-free paths so branch
        order cannot change which error surfaces."""
        def branch(types) -> Expr:
            body = self.pick([Input(),
                              TupExtract(self.pick(PERSON_FIELDS), Input()),
                              Pi(["name", "city"], Input())])
            return SetApply(body, Named("People"),
                            type_filter=frozenset(types))
        branches = [branch(["Student"]), branch(["Employee"])]
        if self.rng.random() < 0.5:
            branches.append(branch(["Person"]))
        self.rng.shuffle(branches)
        plan = branches[0]
        for extra in branches[1:]:
            plan = AddUnion(plan, extra)
        return plan

    def skewed_scan(self) -> Expr:
        src: Expr = SetApply(Deref(Input()), Named("SkewedRefs"))
        roll = self.rng.random()
        if roll < 0.4:
            return SetApply(TupExtract(self.pick(PERSON_FIELDS), Input()),
                            src)
        if roll < 0.7:
            return SetApply(Comp(self.person_pred(1), Input()), src)
        return DE(src)

    def plan(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.25:
            return self.deref_chain()
        if roll < 0.45:
            return self.wide_array_plan()
        if roll < 0.65:
            return self.disjoint_union()
        if roll < 0.85:
            return self.skewed_scan()
        return super().plan()


def generate_batch_plan(seed: int) -> Expr:
    """The canonical batch-stressing plan for one seed (deterministic)."""
    return BatchPlanGen(random.Random(seed)).plan()


# ---------------------------------------------------------------------------
# The differential sweep
# ---------------------------------------------------------------------------

def run_modes(expr: Expr, db: Database, batched: bool = False,
              parallel: int = 0) -> dict:
    """Evaluate *expr* several ways; returns ``{mode: (outcome, payload)}``.

    * ``interpreted`` — the reference semantics;
    * ``compiled`` — streaming pipelines, no analysis;
    * ``licensed`` — compiled, consuming the abstract interpreter's
      facts as optimization licenses (empty short-circuits, bounds-check
      elision);
    * ``sanitized`` — compiled, with every proven fact asserted against
      the values actually flowing (SanitizerError on violation);
    * ``batched`` (with ``batched=True`` or ``parallel >= 2``) — the
      columnar batch engine, serial;
    * ``parallel`` (with ``parallel >= 2``) — the batch engine under
      OID-pool R(n) partitioning across that many forked workers.
    """
    from ..core.analysis.absint import analyze
    modes = ["interpreted", "compiled", "licensed", "sanitized"]
    if batched or parallel >= 2:
        modes.append("batched")
    if parallel >= 2:
        modes.append("parallel")
    out = {}
    for mode in modes:
        ctx = db.context()
        try:
            if mode == "interpreted":
                value = evaluate(expr, ctx, mode="interpreted")
            elif mode == "compiled":
                value = evaluate(expr, ctx, mode="compiled")
            elif mode == "licensed":
                analysis = analyze(expr, database=db)
                value = evaluate(expr, ctx, mode="compiled",
                                 analysis=analysis)
            elif mode == "sanitized":
                analysis = analyze(expr, database=db)
                value = evaluate(expr, ctx, mode="compiled",
                                 analysis=analysis, sanitize=True)
            elif mode == "batched":
                value = evaluate(expr, ctx, mode="batched")
            else:
                value = evaluate(expr, ctx, mode="batched",
                                 parallel=parallel)
            out[mode] = ("ok", value)
        except Exception as error:  # noqa: BLE001 — comparing identity
            out[mode] = ("error", (type(error).__name__, str(error)))
    return out


class SweepReport:
    """Outcome of a differential sweep: per-plan mismatches and
    sanitizer violations, printable for the CLI."""

    def __init__(self) -> None:
        self.plans = 0
        self.ok = 0
        self.mismatches: List[Tuple[str, str, dict]] = []
        self.violations: List[Tuple[str, str]] = []

    def record(self, label: str, expr: Expr, modes: dict) -> None:
        self.plans += 1
        reference = modes["interpreted"]
        bad = {m: r for m, r in modes.items() if r != reference}
        for mode, (outcome, payload) in modes.items():
            if outcome == "error" and payload[0] == "SanitizerError":
                self.violations.append((label, payload[1]))
        if bad:
            self.mismatches.append((label, expr.describe(), bad))
        else:
            self.ok += 1

    @property
    def failed(self) -> bool:
        return bool(self.mismatches or self.violations)

    def render(self) -> str:
        lines = ["sanitize sweep: %d plan(s), %d ok, %d mismatch(es), "
                 "%d sanitizer violation(s)"
                 % (self.plans, self.ok, len(self.mismatches),
                    len(self.violations))]
        for label, message in self.violations:
            lines.append("  VIOLATION %s: %s" % (label, message))
        for label, described, bad in self.mismatches:
            lines.append("  MISMATCH %s: %s" % (label, described))
            for mode, (outcome, payload) in sorted(bad.items()):
                lines.append("    %s: %s %r" % (mode, outcome, payload))
        return "\n".join(lines)


def differential_sweep(n_plans: int = N_PLANS, seed: int = 0,
                       batched: bool = False, parallel: int = 0,
                       report: Optional[SweepReport] = None) -> SweepReport:
    """Run *n_plans* generated plans through all requested modes."""
    report = report or SweepReport()
    db = build_fixture_db()
    for i in range(n_plans):
        expr = generate_plan(seed + i)
        report.record("plan[seed=%d]" % (seed + i), expr,
                      run_modes(expr, db, batched=batched,
                                parallel=parallel))
    return report


def batch_differential_sweep(n_plans: int = N_BATCH_PLANS,
                             seed: int = BATCH_SEED_BASE,
                             parallel: int = 2,
                             report: Optional[SweepReport] = None,
                             ) -> SweepReport:
    """The batch-stressing corpus through every mode, including the
    batch engine serial and (``parallel >= 2``) partition-parallel."""
    report = report or SweepReport()
    db = build_fixture_db()
    for i in range(n_plans):
        expr = generate_batch_plan(seed + i)
        report.record("batch-plan[seed=%d]" % (seed + i), expr,
                      run_modes(expr, db, batched=True, parallel=parallel))
    return report


def university_sweep(report: Optional[SweepReport] = None,
                     batched: bool = False,
                     parallel: int = 0) -> SweepReport:
    """The paper-figure queries over the populated university database,
    through the same modes."""
    from .figures import (figure_3, figure_4, figure_6, figure_7, figure_8,
                          figure_9, figure_10, figure_11, value_views)
    from .university import build_university
    report = report or SweepReport()
    uni = build_university(seed=7)
    value_views(uni)
    builders = [("figure_3", figure_3), ("figure_4", figure_4),
                ("figure_6", figure_6), ("figure_7", figure_7),
                ("figure_8", figure_8), ("figure_9", figure_9),
                ("figure_10", figure_10), ("figure_11", figure_11)]
    for label, builder in builders:
        built: Any = builder()
        plans = built if isinstance(built, (list, tuple)) else [built]
        for j, expr in enumerate(plans):
            suffix = "[%d]" % j if len(plans) > 1 else ""
            report.record(label + suffix, expr,
                          run_modes(expr, uni.db, batched=batched,
                                    parallel=parallel))
    return report


def run_sanitize_sweep(n_plans: int = N_PLANS, seed: int = 0,
                       batched: bool = False,
                       parallel: int = 0) -> SweepReport:
    """The full CLI sweep: university figures, the random corpus, and
    (always) the batch-stressing corpus.  ``batched``/``parallel``
    additionally run the first two corpora through the batch engine."""
    report = university_sweep(batched=batched, parallel=parallel)
    differential_sweep(n_plans=n_plans, seed=seed, batched=batched,
                       parallel=parallel, report=report)
    return batch_differential_sweep(parallel=parallel, report=report)
