"""Seeded random plan generation and the sanitizer differential sweep.

Two consumers share this module:

* the test suite (``tests/analysis/test_sanitizer.py``) runs the
  240-plan differential — every generated plan must produce
  bit-identical values whether the abstract interpreter's facts are
  consumed as optimization licenses, checked as runtime assertions, or
  ignored entirely;
* ``python -m repro.cli sanitize`` runs the same sweep (plus the
  paper-figure queries over the university database) as a standalone
  command with a nonzero exit status on any violation, so CI can gate
  on it.

The grammar is sort-directed (every plan is well-formed) and
deliberately hostile: ``unk`` occurrences and ``unk``/``dne`` tuple
fields, dangling references, duplicate cardinalities, nested multisets,
typed SET_APPLY filtering, method dispatch over an inheritance
hierarchy, and array subscripts that stray out of bounds.  REF is
excluded — it mints OIDs, so occurrence-level identity need not line up
across engines.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from ..core.expr import Const, Expr, Input, Named, evaluate
from ..core.methods import switch_table_plan
from ..core.operators import (DE, AddUnion, ArrCat, ArrExtract, Comp, Cross,
                              Deref, Diff, Grp, Pi, SetApply, SetCollapse,
                              SetCreate, SubArr, TupCat, TupCreate,
                              TupExtract, rel_join)
from ..core.predicates import And, Atom, Not, TruePred
from ..core.values import DNE, UNK, Arr, MultiSet, Ref, Tup
from ..storage import Database

#: The canonical sweep size; tests parametrize over range(N_PLANS).
N_PLANS = 240

PERSON_FIELDS = ("name", "age", "city")
SCALARS = (1, 2, 3, 17, "Madison", "Lodi", UNK)


def build_fixture_db() -> Database:
    """The hostile fixture database the generated plans range over."""
    db = Database()
    h = db.hierarchy
    h.add_type("Person")
    h.add_type("Student", ["Person"])
    h.add_type("Employee", ["Person"])

    people = []
    refs = []
    cities = ["Madison", "Lodi", "Monona", UNK]
    for i in range(14):
        exact = ("Person", "Student", "Employee")[i % 3]
        fields = {"name": "p%d" % (i % 9),  # collisions → duplicates
                  "age": (20 + i % 5) if i % 7 else UNK,
                  "city": cities[i % len(cities)]}
        if i % 6 == 5:
            fields["age"] = DNE  # a field that does-not-exist
        person = Tup(fields, type_name=exact)
        people.append(person)
        refs.append(db.store.insert(person, exact))
    refs.append(Ref("dangling-oid", "Person"))  # deref → dne → dropped

    db.create("People", MultiSet(people + people[:4]))  # duplicates
    db.create("Refs", MultiSet(refs))
    db.create("Nums", MultiSet([1, 2, 2, 3, 3, 3, UNK, 17]))
    db.create("Nested", MultiSet([MultiSet([1, 2]), MultiSet([2, 2, UNK]),
                                  MultiSet([])]))
    db.create("Cities", MultiSet([
        Tup({"cname": c, "tag": i % 2}) for i, c in
        enumerate(["Madison", "Lodi", "Madison", "Stoughton"])]))
    db.create("Letters", Arr(["a", "b", "c", "d", "e"]))
    db.create("Pair", Arr([10, 20]))

    db.methods.define("Person", "describe", [],
                      TupCreate("kind", Const("person")))
    db.methods.define("Student", "describe", [],
                      TupCreate("kind", TupExtract("name", Input())))
    db.methods.define("Person", "pay", ["bonus"],
                      TupExtract("age", Input()))
    return db


class PlanGen:
    """Sort-directed random plan generator over the fixture database."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def pick(self, options):
        return self.rng.choice(options)

    # -- scalar/tuple-valued expressions over INPUT = a person tuple ----

    def person_value(self, depth: int) -> Expr:
        if depth <= 0:
            return self.pick([Input(), TupExtract(self.pick(PERSON_FIELDS),
                                                  Input())])
        roll = self.rng.random()
        if roll < 0.35:
            return TupExtract(self.pick(PERSON_FIELDS), Input())
        if roll < 0.5:
            return Pi(sorted(self.rng.sample(PERSON_FIELDS,
                                             self.rng.randint(1, 2))),
                      Input())
        if roll < 0.65:
            return TupCreate(self.pick(["a", "b"]),
                             self.person_value(depth - 1))
        if roll < 0.8:
            return TupCat(TupCreate("l", TupExtract("name", Input())),
                          TupCreate("r", self.person_value(depth - 1)))
        return Input()

    def person_pred(self, depth: int):
        roll = self.rng.random()
        if roll < 0.45:
            return Atom(TupExtract(self.pick(PERSON_FIELDS), Input()),
                        self.pick(["=", "!=", "<", ">="]),
                        Const(self.pick(SCALARS)))
        if roll < 0.6 and depth > 0:
            return And(self.person_pred(depth - 1),
                       self.person_pred(depth - 1))
        if roll < 0.75 and depth > 0:
            return Not(self.person_pred(depth - 1))
        if roll < 0.85:
            return TruePred()
        return Atom(TupExtract("name", Input()), "=",
                    TupExtract("city", Input()))

    # -- multisets of person tuples ------------------------------------

    def person_set(self, depth: int) -> Expr:
        if depth <= 0:
            return self.pick([Named("People"),
                              SetApply(Deref(Input()), Named("Refs"))])
        roll = self.rng.random()
        src = self.person_set(depth - 1)
        if roll < 0.3:
            type_filter = self.pick([None, frozenset(["Student"]),
                                     frozenset(["Student", "Employee"])])
            return SetApply(self.person_value(depth - 1), src,
                            type_filter=type_filter) \
                if type_filter else SetApply(self.person_value(depth - 1),
                                             src)
        if roll < 0.5:
            return SetApply(Comp(self.person_pred(depth - 1), Input()), src)
        if roll < 0.6:
            return DE(src)
        if roll < 0.7:
            return AddUnion(src, self.person_set(depth - 1))
        if roll < 0.8:
            return Diff(src, self.person_set(depth - 1))
        if roll < 0.9:
            return switch_table_plan("describe", [], src)
        return SetApply(Input(), src)

    # -- arrays ---------------------------------------------------------

    def array_plan(self) -> Expr:
        """Array operators, including subscripts the analyzer must prove
        in or out of bounds (Letters has 5 elements, Pair has 2)."""
        roll = self.rng.random()
        if roll < 0.3:
            return ArrExtract(self.pick([1, 3, 5, "last", 7, 9]),
                              Named("Letters"))
        if roll < 0.5:
            lo = self.rng.randint(1, 4)
            return SubArr(lo, lo + self.rng.randint(0, 4), Named("Letters"))
        if roll < 0.7:
            return ArrCat(Named("Pair"), Named("Letters"))
        if roll < 0.85:
            return ArrExtract(self.pick([1, 2, 3]),
                              ArrCat(Named("Pair"), Named("Pair")))
        return SubArr(2, 2, ArrCat(Named("Letters"), Named("Pair")))

    # -- whole plans ----------------------------------------------------

    def plan(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.4:
            return self.person_set(self.rng.randint(1, 3))
        if roll < 0.48:
            return Grp(TupExtract("city", Input()),
                       self.person_set(self.rng.randint(0, 2)))
        if roll < 0.55:
            return SetCollapse(Named("Nested"))
        if roll < 0.6:
            return SetCreate(Const(self.pick(SCALARS)))
        if roll < 0.66:
            return DE(Named("Nums"))
        if roll < 0.74:
            return Cross(SetApply(TupCreate("n", TupExtract("name", Input())),
                                  self.person_set(0)),
                         Named("Cities"))
        if roll < 0.82:
            return rel_join(
                Atom(TupExtract("city", TupExtract("field1", Input())), "=",
                     TupExtract("cname", TupExtract("field2", Input()))),
                self.person_set(self.rng.randint(0, 1)), Named("Cities"))
        if roll < 0.92:
            return self.array_plan()
        return SetApply(
            Comp(Atom(Input(), self.pick(["=", "!=", "<"]),
                      Const(self.pick([2, 3, 17]))), Input()),
            Named("Nums"))


def generate_plan(seed: int) -> Expr:
    """The canonical plan for one seed (deterministic)."""
    return PlanGen(random.Random(seed)).plan()


# ---------------------------------------------------------------------------
# The differential sweep
# ---------------------------------------------------------------------------

def run_modes(expr: Expr, db: Database) -> dict:
    """Evaluate *expr* four ways; returns ``{mode: (outcome, payload)}``.

    * ``interpreted`` — the reference semantics;
    * ``compiled`` — streaming pipelines, no analysis;
    * ``licensed`` — compiled, consuming the abstract interpreter's
      facts as optimization licenses (empty short-circuits, bounds-check
      elision);
    * ``sanitized`` — compiled, with every proven fact asserted against
      the values actually flowing (SanitizerError on violation).
    """
    from ..core.analysis.absint import analyze
    out = {}
    for mode in ("interpreted", "compiled", "licensed", "sanitized"):
        ctx = db.context()
        try:
            if mode == "interpreted":
                value = evaluate(expr, ctx, mode="interpreted")
            elif mode == "compiled":
                value = evaluate(expr, ctx, mode="compiled")
            elif mode == "licensed":
                analysis = analyze(expr, database=db)
                value = evaluate(expr, ctx, mode="compiled",
                                 analysis=analysis)
            else:
                analysis = analyze(expr, database=db)
                value = evaluate(expr, ctx, mode="compiled",
                                 analysis=analysis, sanitize=True)
            out[mode] = ("ok", value)
        except Exception as error:  # noqa: BLE001 — comparing identity
            out[mode] = ("error", (type(error).__name__, str(error)))
    return out


class SweepReport:
    """Outcome of a differential sweep: per-plan mismatches and
    sanitizer violations, printable for the CLI."""

    def __init__(self) -> None:
        self.plans = 0
        self.ok = 0
        self.mismatches: List[Tuple[str, str, dict]] = []
        self.violations: List[Tuple[str, str]] = []

    def record(self, label: str, expr: Expr, modes: dict) -> None:
        self.plans += 1
        reference = modes["interpreted"]
        bad = {m: r for m, r in modes.items() if r != reference}
        for mode, (outcome, payload) in modes.items():
            if outcome == "error" and payload[0] == "SanitizerError":
                self.violations.append((label, payload[1]))
        if bad:
            self.mismatches.append((label, expr.describe(), bad))
        else:
            self.ok += 1

    @property
    def failed(self) -> bool:
        return bool(self.mismatches or self.violations)

    def render(self) -> str:
        lines = ["sanitize sweep: %d plan(s), %d ok, %d mismatch(es), "
                 "%d sanitizer violation(s)"
                 % (self.plans, self.ok, len(self.mismatches),
                    len(self.violations))]
        for label, message in self.violations:
            lines.append("  VIOLATION %s: %s" % (label, message))
        for label, described, bad in self.mismatches:
            lines.append("  MISMATCH %s: %s" % (label, described))
            for mode, (outcome, payload) in sorted(bad.items()):
                lines.append("    %s: %s %r" % (mode, outcome, payload))
        return "\n".join(lines)


def differential_sweep(n_plans: int = N_PLANS, seed: int = 0,
                       report: Optional[SweepReport] = None) -> SweepReport:
    """Run *n_plans* generated plans through all four modes."""
    report = report or SweepReport()
    db = build_fixture_db()
    for i in range(n_plans):
        expr = generate_plan(seed + i)
        report.record("plan[seed=%d]" % (seed + i), expr,
                      run_modes(expr, db))
    return report


def university_sweep(report: Optional[SweepReport] = None) -> SweepReport:
    """The paper-figure queries over the populated university database,
    through the same four modes."""
    from .figures import (figure_3, figure_4, figure_6, figure_7, figure_8,
                          figure_9, figure_10, figure_11, value_views)
    from .university import build_university
    report = report or SweepReport()
    uni = build_university(seed=7)
    value_views(uni)
    builders = [("figure_3", figure_3), ("figure_4", figure_4),
                ("figure_6", figure_6), ("figure_7", figure_7),
                ("figure_8", figure_8), ("figure_9", figure_9),
                ("figure_10", figure_10), ("figure_11", figure_11)]
    for label, builder in builders:
        built: Any = builder()
        plans = built if isinstance(built, (list, tuple)) else [built]
        for j, expr in enumerate(plans):
            suffix = "[%d]" % j if len(plans) > 1 else ""
            report.record(label + suffix, expr, run_modes(expr, uni.db))
    return report


def run_sanitize_sweep(n_plans: int = N_PLANS, seed: int = 0) -> SweepReport:
    """The full CLI sweep: university figures plus random plans."""
    report = university_sweep()
    return differential_sweep(n_plans=n_plans, seed=seed, report=report)
