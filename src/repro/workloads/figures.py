"""Query trees for every figure and worked example in the paper.

Each builder returns the algebra tree(s) exactly in the shape the
corresponding figure draws, over the populated university database, so
tests can verify value-equivalence between a figure's alternatives and
benchmarks can measure the work differences Section 5 claims.

Covered artifacts:

* Figure 3 — ``retrieve (TopTen[5].name, TopTen[5].salary)``;
* Figure 4 — the functional join over Employees/Madison;
* Figure 5 — the ⊎-based overridden-method plan (built via
  :func:`repro.core.methods.build_union_plan`);
* Figures 6–8 — Example 1's three alternatives (DE/GRP/join placement);
* Figures 9–11 — Example 2's initial tree, the rule-15 collapse, and
  the rule-10 + rule-26 alternative.

Example 1 note: the paper assumes for that example that ``advisor`` is a
*value* (the advisor's name) rather than a reference; ``value_views``
materializes flat value-based views (StudentsV/EmployeesV) implementing
that assumption, with disjoint field names so rel_join's TUP_CAT is
well-formed.

Figures 9/10 note (erratum, also handled in rule 10): the paper's trees
filter *within* groups, which strands empty groups that the Figure 11
alternative never creates; the per-group filter here therefore drops
emptied groups with a COMP, making all three trees exactly equivalent.
"""

from __future__ import annotations

from typing import Dict

from ..core.expr import Const, Expr, Input, Named, substitute_input
from ..core.operators import (DE, ArrExtract, Comp, Deref, Grp, Pi, SetApply,
                              TupCat, TupCreate, TupExtract, join_field,
                              rel_join)
from ..core.predicates import Atom
from ..core.values import MultiSet, Tup
from .university import University


def _x(field: str) -> Expr:
    return TupExtract(field, Input())


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------

def figure_3() -> Expr:
    """π_{name,salary}(DEREF(ARR_EXTRACT_5(TopTen))) — verbatim."""
    return Pi(["name", "salary"], Deref(ArrExtract(5, Named("TopTen"))))


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------

def figure_4(city: str = "Madison") -> Expr:
    """The functional join, drawn bottom-up exactly as the figure:

        SET_APPLY_{DEREF(INPUT)}(Employees)
        → SET_APPLY_{COMP_{city = "Madison"}(INPUT)}
        → SET_APPLY_{DEREF(TUP_EXTRACT_dept(INPUT))}
        → SET_APPLY_{π_name}
    """
    dereffed = SetApply(Deref(Input()), Named("Employees"))
    selected = SetApply(
        Comp(Atom(_x("city"), "=", Const(city)), Input()), dereffed)
    depts = SetApply(Deref(_x("dept")), selected)
    return SetApply(Pi(["name"], Input()), depts)


# ---------------------------------------------------------------------------
# Example 1 (Figures 6, 7, 8)
# ---------------------------------------------------------------------------

def value_views(uni: University) -> None:
    """Materialize the value-based views Example 1 assumes.

    StudentsV: (sname, sdept, advisor)  — advisor is the *name* string;
    EmployeesV: (ename,)                — disjoint fields for TUP_CAT.
    """
    store = uni.db.store
    students = MultiSet(
        Tup(sname=s["name"],
            sdept=store.get(s["dept"].oid)["name"],
            advisor=store.get(s["advisor"].oid)["name"])
        for s in (store.get(r.oid) for r in uni.student_refs))
    employees = MultiSet(
        Tup(ename=e["name"])
        for e in (store.get(r.oid) for r in uni.employee_refs))
    uni.db.create("StudentsV", students)
    uni.db.create("EmployeesV", employees)


def _join_students_employees() -> Expr:
    pred = Atom(join_field(1, "advisor"), "=", join_field(2, "ename"))
    return rel_join(pred, Named("StudentsV"), Named("EmployeesV"))


def _project_per_group(fields) -> Expr:
    return SetApply(Pi(list(fields), Input()), Input())


def figure_6() -> Expr:
    """Example 1, initial tree: DE ∘ π ∘ GRP ∘ rel_join.

    π and DE apply within each group (the figure omits those details);
    grouping is on the student's department.
    """
    grouped = Grp(_x("sdept"), _join_students_employees())
    projected = SetApply(_project_per_group(["sdept", "ename"]), grouped)
    return SetApply(DE(Input()), projected)


def figure_7() -> Expr:
    """First transformation: DE (and π) pushed ahead of grouping —
    GRP_{sdept}(DE(π(join))) — rule 8 plus the π-ahead-of-GRP move."""
    projected = SetApply(Pi(["sdept", "ename"], Input()),
                         _join_students_employees())
    return Grp(_x("sdept"), DE(projected))


def figure_8() -> Expr:
    """Second transformation: DE and π pushed past the join (variants of
    rule 7), so DE operates on |S| + |E| occurrences rather than
    |S| · |E|."""
    left = DE(SetApply(Pi(["sdept", "advisor"], Input()),
                       Named("StudentsV")))
    right = DE(SetApply(Pi(["ename"], Input()), Named("EmployeesV")))
    pred = Atom(join_field(1, "advisor"), "=", join_field(2, "ename"))
    joined = rel_join(pred, left, right)
    projected = DE(SetApply(Pi(["sdept", "ename"], Input()), joined))
    return Grp(_x("sdept"), projected)


# ---------------------------------------------------------------------------
# Example 2 (Figures 9, 10, 11)
# ---------------------------------------------------------------------------

def _students_dereffed() -> Expr:
    return SetApply(Deref(Input()), Named("Students"))


def _floor_pred(floor: int) -> Atom:
    """floor(DEREF(dept(INPUT))) = floor — the repeated-DEREF shape."""
    return Atom(TupExtract("floor", Deref(_x("dept"))), "=", Const(floor))


def _group_filter_body(floor: int) -> Expr:
    """Per-group filter (with the empty-group-dropping COMP)."""
    filtered = SetApply(Comp(_floor_pred(floor), Input()), Input())
    return Comp(Atom(Input(), "!=", Const(MultiSet())), filtered)


def figure_9(floor: int = 5) -> Expr:
    """Example 2, initial tree:

        SET_APPLY_{SET_APPLY_{π_name}}
        ∘ σ_{floor(DEREF(dept)) = floor}       (within each group)
        ∘ GRP_{division(DEREF(dept))}
        ∘ Students (dereferenced)
    """
    grouped = Grp(TupExtract("division", Deref(_x("dept"))),
                  _students_dereffed())
    filtered = SetApply(_group_filter_body(floor), grouped)
    return SetApply(_project_per_group(["name"]), filtered)


def figure_10(floor: int = 5) -> Expr:
    """First transformation: successive SET_APPLYs collapsed twice
    (rule 15) — one scan of the group set, and within the subscript the
    projection is composed onto the filter."""
    grouped = Grp(TupExtract("division", Deref(_x("dept"))),
                  _students_dereffed())
    inner = substitute_input(_project_per_group(["name"]),
                             _group_filter_body(floor))
    return SetApply(inner, grouped)


def figure_11(floor: int = 5) -> Expr:
    """Alternative first transformation (rules 10 and 26): the selection
    is pushed ahead of grouping, and the projection-with-DEREF is pushed
    inside the COMP, so "the dept attribute needs to be DEREF'd only
    once" — the GRP key then reads the materialized dept directly."""
    rebuild = TupCat(TupCreate("name", _x("name")),
                     TupCreate("dept", Deref(_x("dept"))))
    pushed_pred = Atom(TupExtract("floor", _x("dept")), "=", Const(floor))
    select_body = Comp(pushed_pred, rebuild)
    selected = SetApply(select_body, _students_dereffed())
    grouped = Grp(TupExtract("division", _x("dept")), selected)
    return SetApply(_project_per_group(["name"]), grouped)


ALL_FIGURES: Dict[str, object] = {
    "figure_3": figure_3,
    "figure_4": figure_4,
    "figure_6": figure_6,
    "figure_7": figure_7,
    "figure_8": figure_8,
    "figure_9": figure_9,
    "figure_10": figure_10,
    "figure_11": figure_11,
}
