"""The benchmark smoke check: ``python -m repro.cli bench --smoke``.

One tiny run per paper figure (seconds, not minutes — this is the
tier-2 sanity gate, not the measurement), asserting the *directions*
Section 5 claims rather than absolute numbers:

* Figure 3 — the array extract dereferences exactly one object;
* Figure 4 — the functional join forms zero ×-pairs;
* Figure 5 — ⊎-based dispatch does no run-time dispatches (the switch
  table does one per occurrence), and per-type indexes remove the
  extra scans the ⊎ plan pays;
* Example 1 (Figures 7→8) — pushing DE below the join shrinks both the
  DE work and the pair count;
* Example 2 (Figures 9→11) — the rule-15 collapse scans fewer
  elements, the rule-26 alternative dereferences fewer objects.

Every figure also runs on all three execution engines (interpreted,
compiled, batched) and must produce the same value, the compiled
engine must report deref-cache hits, and the batched engine's fused
union scan must visit the dispatch extent once instead of once per
branch — the smoke check doubles as a quick engine-agreement probe.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from ..core.expr import Expr, evaluate
from . import dispatch, figures
from .university import build_university


def _run(ctx, expr: Expr, mode: str) -> Tuple[object, Dict[str, int]]:
    ctx.begin_query()
    value = evaluate(expr, ctx, mode=mode)
    return value, dict(ctx.stats)


def run_smoke(smoke: bool = True, n_employees: int = 150,
              echo: Callable[[str], None] = print) -> int:
    """Run every check; prints one PASS/FAIL line each, returns 0/1."""
    started = time.time()
    # Small distinct pools (advisors, employee names) so the Example 1
    # claim is visible: DE-early only wins when DE actually dedups.
    uni = build_university(n_employees=n_employees,
                           n_students=max(10, n_employees // 3),
                           advisor_pool=4, employee_name_pool=4,
                           subords_per_employee=6, seed=7)
    figures.value_views(uni)
    dispatch.build_population(uni)
    dispatch.define_boss_methods(uni)
    dispatch.define_rich_subords_methods(uni)
    uni.db.indexes.build_typed("P")
    ctx = uni.db.context()

    floor = 2
    plans: Dict[str, Expr] = {
        "fig3": figures.figure_3(),
        "fig4": figures.figure_4(),
        "fig5_switch": dispatch.switch_plan("boss"),
        "fig5_union": dispatch.union_plan(uni, "boss"),
        "fig5_union_idx": dispatch.union_plan(uni, "boss", use_index=True),
        "fig6": figures.figure_6(),
        "fig7": figures.figure_7(),
        "fig8": figures.figure_8(),
        "fig9": figures.figure_9(floor),
        "fig10": figures.figure_10(floor),
        "fig11": figures.figure_11(floor),
    }

    interp: Dict[str, Dict[str, int]] = {}
    compiled: Dict[str, Dict[str, int]] = {}
    batched: Dict[str, Dict[str, int]] = {}
    failures: List[str] = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        echo("%-44s %s%s" % (label, "PASS" if ok else "FAIL",
                             "  (%s)" % detail if detail else ""))
        if not ok:
            failures.append(label)

    for name, expr in plans.items():
        vi, si = _run(ctx, expr, "interpreted")
        vc, sc = _run(ctx, expr, "compiled")
        vb, sb = _run(ctx, expr, "batched")
        interp[name], compiled[name], batched[name] = si, sc, sb
        check("%s: engines agree" % name, vi == vc == vb)

    s = interp
    check("fig3: exactly one deref",
          s["fig3"].get("deref_count") == 1,
          "deref_count=%s" % s["fig3"].get("deref_count"))
    check("fig4: functional join forms no pairs",
          s["fig4"].get("cross_pairs", 0) == 0)
    check("fig5: switch dispatches per occurrence",
          s["fig5_switch"].get("method_dispatches", 0) > 0)
    check("fig5: union plan needs no run-time dispatch",
          s["fig5_union"].get("method_dispatches", 0) == 0)
    check("fig5: indexes remove the extra scans",
          (compiled["fig5_union_idx"].get("index_lookups", 0) > 0
           and s["fig5_union_idx"].get("elements_scanned", 0)
           < s["fig5_union"].get("elements_scanned", 0)))
    check("ex1: DE below join shrinks DE work (fig8 < fig7)",
          s["fig8"].get("de_elements", 0) < s["fig7"].get("de_elements", 0),
          "%s vs %s" % (s["fig8"].get("de_elements"),
                        s["fig7"].get("de_elements")))
    check("ex1: DE below join shrinks pair count (fig8 < fig7)",
          s["fig8"].get("cross_pairs", 0) < s["fig7"].get("cross_pairs", 0))
    check("ex2: rule-15 collapse scans less (fig10 < fig9)",
          s["fig10"].get("elements_scanned", 0)
          < s["fig9"].get("elements_scanned", 0))
    check("ex2: rule-26 halves the derefs (fig11 < fig9)",
          s["fig11"].get("deref_count", 0) < s["fig9"].get("deref_count", 0),
          "%s vs %s" % (s["fig11"].get("deref_count"),
                        s["fig9"].get("deref_count")))
    cache_hits = sum(stats.get("deref_cache_hit", 0)
                     for stats in compiled.values())
    check("compiled: deref cache hits observed", cache_hits > 0,
          "hits=%d" % cache_hits)
    check("fig5: fused union scans the extent once (batched)",
          batched["fig5_union"].get("elements_scanned", 0)
          < s["fig5_union"].get("elements_scanned", 0),
          "%s vs %s" % (batched["fig5_union"].get("elements_scanned"),
                        s["fig5_union"].get("elements_scanned")))

    # Index-backed access paths: a 1%-selectivity point lookup over a
    # keyed extent must probe (counters prove it) and beat the scan.
    from ..core.engine import compile_plan
    from ..core.expr import Const, Input, Named
    from ..core.operators import SetApply, TupExtract
    from ..core.predicates import Atom, Comp
    from ..core.values import MultiSet, Tup
    from ..storage import Database

    n = 10000
    lookup_db = Database()
    lookup_db.create("L", MultiSet(
        [Tup({"band": i // (n // 100), "uid": i}) for i in range(n)]))
    lookup_db.indexes.create_index("keyed", "L",
                                   TupExtract("band", Input()))
    lookup_plan = SetApply(
        Comp(Atom(TupExtract("band", Input()), "=", Const(0)), Input()),
        Named("L"))
    lookup_ctx = lookup_db.context()
    probe_pipe = compile_plan(lookup_plan, access_paths="force")
    scan_pipe = compile_plan(lookup_plan, access_paths="off")

    def timed(pipeline):
        best = float("inf")
        value = None
        for _ in range(3):
            lookup_ctx.begin_query()
            t0 = time.perf_counter()
            value = pipeline.execute(lookup_ctx)
            best = min(best, time.perf_counter() - t0)
        return value, best, dict(lookup_ctx.stats)

    probe_value, probe_s, probe_stats = timed(probe_pipe)
    scan_value, scan_s, _ = timed(scan_pipe)
    check("index: probe agrees with scan", probe_value == scan_value)
    check("index: point probe beats the scan at 1% selectivity",
          (probe_stats.get("index_lookups", 0) > 0 and probe_s < scan_s),
          "probe %.0fus vs scan %.0fus"
          % (probe_s * 1e6, scan_s * 1e6))

    elapsed = time.time() - started
    echo("%d check(s), %d failure(s), %.1fs"
         % (len(plans) + 13, len(failures), elapsed))
    return 1 if failures else 0
