"""The tracing smoke check: ``make trace-smoke``.

Runs the worked-example queries end-to-end through the public
``connect()``/``execute()`` API with tracing on, and asserts the
observability invariants that the unit suite can't check cheaply in
one place:

* every traced statement yields a non-empty span tree whose plan and
  operator spans carry cardinalities, and EXPLAIN ANALYZE renders the
  estimated-vs-actual deviation for it;
* ``CostModel.calibrate`` harvests actual cardinalities from a trace;
* the process-wide metrics registry survives a Prometheus round-trip;
* a *disabled* tracer stays within the overhead bound (<5%) of an
  untraced run — the "observability is free when off" guarantee.

Timing note: the overhead gate takes the best of several interleaved
trials precisely because CI machines are noisy; a single pair of
timings would gate on scheduler luck, the minimum gates on the code.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from ..api import ExecutionOptions, connect
from ..core.optimizer import CostModel, Statistics
from ..obs.metrics import REGISTRY, parse_prometheus
from .university import build_university

#: The Section 2.2 / figure queries the examples run, in EXCESS text.
EXAMPLE_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("q1-children-of-floor-2", """
        range of E is Employees
        retrieve (C.name) from C in E.kids where E.dept.floor = 2
    """),
    ("fig4-functional-join", """
        retrieve (Employees.dept.name) where Employees.city = "Madison"
    """),
    ("grp-by-division", """
        range of S is Students
        retrieve (S.name) by S.dept.division where S.dept.floor = 2
    """),
    ("salary-filter", """
        range of E is Employees
        retrieve (E.name, E.salary) where E.salary > 50000
    """),
)

#: Repetitions for the overhead measurement (per trial, per arm).
_REPS = 30
_TRIALS = 5
_OVERHEAD_BOUND = 1.05


def _check(echo: Callable[[str], None], name: str, ok: bool,
           detail: str = "") -> bool:
    echo("%s  %-34s %s" % ("PASS" if ok else "FAIL", name, detail))
    return ok


def _time_arm(run: Callable[[], object]) -> float:
    started = time.perf_counter()
    for _ in range(_REPS):
        run()
    return time.perf_counter() - started


def run_trace_smoke(echo: Callable[[str], None] = print) -> int:
    """Run every check; prints one PASS/FAIL line each, returns 0/1."""
    started = time.time()
    uni = build_university(n_departments=4, n_employees=40, n_students=60,
                           advisor_pool=5, seed=3)
    conn = connect(uni.db, ExecutionOptions(trace=True))
    model = CostModel(Statistics.from_database(uni.db))
    ok = True

    # -- 1. span trees + EXPLAIN ANALYZE for the example queries -------
    for name, query in EXAMPLE_QUERIES:
        result = conn.execute(query, optimize=False)
        trace = result.trace
        spans = trace.span_count() if trace is not None else 0
        operators = trace.find_all(kind="operator") if trace else []
        rendered = result.explain(cost_model=model)
        ok &= _check(
            echo, name,
            trace is not None and spans >= 3 and bool(operators)
            and "actual card=" in rendered and "est card≈" in rendered,
            "%d spans, %d operators" % (spans, len(operators)))

    # -- 2. calibration harvests actuals from the trace ----------------
    result = conn.execute(EXAMPLE_QUERIES[1][1], optimize=False)
    adjusted = model.calibrate(result.trace)
    ok &= _check(echo, "calibrate-from-trace",
                 bool(adjusted["objects"]),
                 "objects=%s" % sorted(adjusted["objects"]))

    # -- 3. metrics registry round-trip --------------------------------
    text = REGISTRY.to_prometheus()
    parsed = parse_prometheus(text)
    ok &= _check(echo, "prometheus-round-trip", len(parsed) > 0,
                 "%d samples" % len(parsed))

    # -- 4. disabled-tracer overhead bound -----------------------------
    conn.tracing = False
    bare = connect(uni.db, ExecutionOptions())
    bare.tracer = None
    bare.session.context.tracer = None
    query = EXAMPLE_QUERIES[0][1]

    def run_disabled() -> object:
        return conn.execute(query, optimize=False)

    def run_untraced() -> object:
        return bare.execute(query, optimize=False)

    ratios: List[float] = []
    for _ in range(_TRIALS):
        baseline = _time_arm(run_untraced)
        disabled = _time_arm(run_disabled)
        ratios.append(disabled / baseline)
    best = min(ratios)
    ok &= _check(echo, "disabled-tracer-overhead",
                 best < _OVERHEAD_BOUND,
                 "best %.3fx over %d trials (bound %.2fx)"
                 % (best, _TRIALS, _OVERHEAD_BOUND))

    echo("trace smoke %s in %.1fs"
         % ("PASSED" if ok else "FAILED", time.time() - started))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(run_trace_smoke())
