"""Synthetic university database — the paper's Figure 1, populated.

The paper defines the schema (Person/Employee/Student/Department plus
the named objects Employees, Students, Departments, TopTen) but, having
no system evaluation, never populates it.  This generator produces
instances with controllable cardinalities, fan-outs, and skew so the
benchmarks can measure the effects the paper argues for:

* ``n_departments`` / ``n_employees`` / ``n_students`` — set sizes;
* ``kids_per_employee`` — size of the nested ``kids`` multiset;
* ``subords_per_employee`` — size of ``sub_ords`` (the Section 4
  trade-off turns on this being large relative to |P|);
* ``advisor_pool`` — how many distinct advisors students share (drives
  the duplication factor that makes DE placement matter in Example 1);
* ``floors`` — departments are spread over this many floors (drives
  the floor-predicate selectivity of Example 2).

Determinism: everything derives from ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.values import Arr, MultiSet, Ref, Tup
from ..excess.session import Session
from ..storage import Database

#: The EXTRA DDL of Figure 1, verbatim in structure.
FIGURE_1_DDL = """
define type Person:
(
    ssnum: int4,
    name: char[],
    street: char[20],
    city: char[10],
    zip: int4,
    birthday: Date
)

define type Employee:
(
    jobtitle: char[20],
    dept: ref Department,
    manager: ref Employee,
    sub_ords: { ref Employee },
    salary: int4,
    kids: { Person }
)
inherits Person

define type Student:
(
    gpa: float4,
    dept: ref Department,
    advisor: ref Employee
)
inherits Person

define type Department:
(
    division: char[],
    name: char[],
    floor: int4,
    employees: { ref Employee }
)

create Employees: { ref Employee }
create Students: { ref Student }
create Departments: { ref Department }
create TopTen: array [1..10] of ref Employee
"""

CITIES = ["Madison", "Milwaukee", "Chicago", "Verona", "Middleton"]
DIVISIONS = ["Engineering", "Arts and Sciences", "Business", "Medicine"]
FIRST_NAMES = ["Ada", "Ben", "Cleo", "Dev", "Eve", "Finn", "Gail", "Hugo",
               "Iris", "Jack", "Kira", "Liam", "Mona", "Nils", "Opal"]
STREETS = ["Oak St", "Elm St", "Main St", "State St", "Park Ave"]
JOBS = ["engineer", "analyst", "manager", "clerk", "director"]


class University:
    """Handle to a generated university database."""

    def __init__(self, database: Database, session: Session,
                 department_refs: List[Ref], employee_refs: List[Ref],
                 student_refs: List[Ref]):
        self.db = database
        self.session = session
        self.department_refs = department_refs
        self.employee_refs = employee_refs
        self.student_refs = student_refs


def build_university(n_departments: int = 4, n_employees: int = 30,
                     n_students: int = 40, kids_per_employee: int = 2,
                     subords_per_employee: int = 3,
                     advisor_pool: Optional[int] = None,
                     employee_name_pool: Optional[int] = None,
                     floors: int = 5, seed: int = 0,
                     database: Database = None) -> University:
    """Build and populate the Figure 1 database; returns a handle.

    ``employee_name_pool`` bounds the number of *distinct* employee
    names; collisions drive the duplication factor of Example 1's
    name-equality join (the paper's |S|·|E| versus |S|+|E| argument
    needs a large duplication factor to bite).
    """
    rng = random.Random(seed)
    db = database or Database()
    session = Session(db, _api_internal=True)
    session.run(FIGURE_1_DDL)
    types = db.types
    store = db.store

    def person_fields(i: int, name_pool: Optional[int] = None) -> dict:
        if name_pool:
            name = "%s %d" % (FIRST_NAMES[i % len(FIRST_NAMES)
                                          % name_pool], i % name_pool)
        else:
            name = "%s %d" % (rng.choice(FIRST_NAMES), i)
        return dict(
            ssnum=10000 + i,
            name=name,
            street=rng.choice(STREETS),
            city=rng.choice(CITIES),
            zip=53700 + rng.randrange(20),
            birthday="19%02d-%02d-%02d" % (rng.randrange(40, 99),
                                           rng.randrange(1, 13),
                                           rng.randrange(1, 29)))

    # Departments first (employees hold refs to them).
    department_refs: List[Ref] = []
    for i in range(n_departments):
        dept = types.new("Department",
                         division=DIVISIONS[i % len(DIVISIONS)],
                         name="Dept %d" % i,
                         floor=1 + (i % floors),
                         employees=MultiSet())
        department_refs.append(store.insert(dept, "Department"))

    # Employees: insert with a self-manager placeholder, then wire
    # managers/sub_ords in an update pass (identity is stable under
    # update, so the refs remain valid).
    employee_refs: List[Ref] = []
    for i in range(n_employees):
        kids = MultiSet(
            types.new("Person", **person_fields(90000 + i * 10 + k))
            for k in range(kids_per_employee))
        dept_ref = department_refs[i % n_departments]
        employee = types.new(
            "Employee",
            jobtitle=rng.choice(JOBS),
            dept=dept_ref,
            manager=Ref(-1, "Employee"),  # placeholder, fixed below
            sub_ords=MultiSet(),
            salary=30000 + rng.randrange(70) * 1000,
            kids=kids,
            check=False,
            **person_fields(i, employee_name_pool))
        employee_refs.append(store.insert(employee, "Employee"))

    for i, ref in enumerate(employee_refs):
        manager = employee_refs[(i // 3) % n_employees] if n_employees else ref
        subords = MultiSet(
            employee_refs[(i + 1 + k) % n_employees]
            for k in range(min(subords_per_employee, max(0, n_employees - 1))))
        store.update(ref.oid, store.get(ref.oid).replace(
            manager=manager, sub_ords=subords))

    # Department employee sets.
    for d, dept_ref in enumerate(department_refs):
        members = MultiSet(r for i, r in enumerate(employee_refs)
                           if i % n_departments == d)
        store.update(dept_ref.oid,
                     store.get(dept_ref.oid).replace(employees=members))

    # Students: advisors drawn from a bounded pool to control the
    # duplication factor of Example 1.
    pool = advisor_pool or max(1, n_employees // 3)
    student_refs: List[Ref] = []
    for i in range(n_students):
        student = types.new(
            "Student",
            gpa=round(2.0 + rng.random() * 2.0, 2),
            dept=department_refs[i % n_departments],
            advisor=employee_refs[i % min(pool, n_employees)]
            if employee_refs else Ref(-1, "Employee"),
            check=False,
            **person_fields(50000 + i))
        student_refs.append(store.insert(student, "Student"))

    db.create("Employees", MultiSet(employee_refs))
    db.create("Students", MultiSet(student_refs))
    db.create("Departments", MultiSet(department_refs))
    db.create("TopTen", Arr(employee_refs[:min(10, n_employees)]))

    _register_functions(db)
    return University(db, session, department_refs, employee_refs,
                      student_refs)


def _register_functions(db: Database) -> None:
    """The virtual ``age`` field of Person (an E-function stand-in).

    Registered both as a scalar function and as a stored method on
    Person, so ``E.kids.age`` resolves the way the paper describes: "age
    is assumed to be defined by a function … so it is a virtual field
    (or method) of the Person type"."""
    def age(birthday: str) -> int:
        year = int(birthday.split("-")[0])
        return 2026 - year

    db.register_function("age", age)
    from ..core.expr import Func, Input
    from ..core.operators import TupExtract
    db.methods.define("Person", "age", [],
                      Func("age", [TupExtract("birthday", Input())]))
