"""Blocking client for the network server, plus a small thread-safe
connection pool.

:class:`ServerClient` speaks the newline-delimited JSON protocol over
one socket; ``execute()`` is the round trip, and the split
``send()``/``recv()`` pair lets callers pipeline requests (the smoke
script and the benchmark use that to demonstrate admission control and
group commit).  :class:`ClientPool` hands out pooled clients to many
threads.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional

from ..core.serialize import value_from_json

__all__ = ["ServerClient", "ServerError", "ServerResult", "ClientPool"]


class ServerError(RuntimeError):
    """An error response from the server (``code`` is the protocol
    error code: parse/execute/txn/timeout/admission/shutdown/protocol)."""

    def __init__(self, code: str, message: str, request_id: Any = None):
        super().__init__("[%s] %s" % (code, message))
        self.code = code
        self.message = message
        self.id = request_id


class ServerResult:
    """One decoded success response."""

    __slots__ = ("payload",)

    def __init__(self, payload: Dict[str, Any]):
        self.payload = payload

    @property
    def kind(self) -> str:
        return self.payload.get("kind", "empty")

    @property
    def statements(self) -> int:
        return self.payload.get("statements", 0)

    @property
    def seconds(self) -> float:
        return self.payload.get("seconds", 0.0)

    @property
    def stats(self) -> Dict[str, Any]:
        return self.payload.get("stats", {})

    @property
    def raw_rows(self) -> List[Any]:
        """The last statement's rows, still in tagged-JSON form —
        byte-stable, which the differential tests compare directly."""
        return self.payload.get("rows", [])

    def rows(self) -> List[Any]:
        """The last statement's rows as algebra values (Tup/Ref/…)."""
        return [value_from_json(row) for row in self.raw_rows]

    @property
    def explain(self) -> Optional[str]:
        """The EXPLAIN ANALYZE text, when the request asked for it."""
        return self.payload.get("explain")

    @property
    def id(self) -> Any:
        return self.payload.get("id")

    def __repr__(self) -> str:
        return "<ServerResult %s rows=%d>" % (self.kind, len(self.raw_rows))


class ServerClient:
    """A blocking connection to the server.

    Not thread-safe — one client per thread (or use
    :class:`ClientPool`).  Usable as a context manager.
    """

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: Optional[float] = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._closed = False

    # -- low-level pipelined API ---------------------------------------

    def send(self, q: Optional[str] = None, *,
             params: Optional[Dict[str, Any]] = None,
             txn: Optional[str] = None, timeout: Optional[float] = None,
             request_id: Any = None, explain: bool = False) -> None:
        """Write one request without waiting for the response."""
        payload: Dict[str, Any] = {}
        if q is not None:
            payload["q"] = q
        if params:
            payload["params"] = params
        if txn is not None:
            payload["txn"] = txn
        if timeout is not None:
            payload["timeout"] = timeout
        if request_id is not None:
            payload["id"] = request_id
        if explain:
            payload["explain"] = "analyze"
        self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")

    def recv(self) -> ServerResult:
        """Read one response; raises :class:`ServerError` on failure."""
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        payload = json.loads(line.decode("utf-8"))
        if not payload.get("ok"):
            error = payload.get("error") or {}
            raise ServerError(error.get("code", "execute"),
                              error.get("message", "unknown error"),
                              payload.get("id"))
        return ServerResult(payload)

    # -- round trips ----------------------------------------------------

    def execute(self, q: str, *, params: Optional[Dict[str, Any]] = None,
                txn: Optional[str] = None, timeout: Optional[float] = None,
                explain: bool = False) -> ServerResult:
        self.send(q, params=params, txn=txn, timeout=timeout,
                  explain=explain)
        return self.recv()

    def analyze(self, q: str, *,
                params: Optional[Dict[str, Any]] = None) -> str:
        """EXPLAIN ANALYZE a read-only script: run it under tracing on
        the server and return the last statement's annotated plan text
        (same rendering as the local CLI's ``.analyze``)."""
        result = self.execute(q, params=params, explain=True)
        return result.explain or ""

    def begin(self, q: Optional[str] = None) -> ServerResult:
        self.send(q, txn="begin")
        return self.recv()

    def commit(self, q: Optional[str] = None) -> ServerResult:
        self.send(q, txn="commit")
        return self.recv()

    def abort(self) -> ServerResult:
        self.send(txn="abort")
        return self.recv()

    def atomic(self, q: str, *,
               params: Optional[Dict[str, Any]] = None) -> ServerResult:
        """Run *q* as one transaction (all-or-nothing)."""
        self.send(q, params=params, txn="atomic")
        return self.recv()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClientPool:
    """A bounded pool of :class:`ServerClient` connections.

    ``acquire()``/``release()`` or the ``connection()`` context
    manager; ``execute()`` is the borrow-run-return convenience.
    Blocks when all *size* connections are out.
    """

    def __init__(self, port: int, host: str = "127.0.0.1", size: int = 4,
                 timeout: Optional[float] = 60.0):
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.port = port
        self.host = host
        self.size = size
        self.timeout = timeout
        self._idle: List[ServerClient] = []
        self._created = 0
        self._lock = threading.Lock()
        self._available = threading.Semaphore(size)
        self._closed = False

    def acquire(self) -> ServerClient:
        self._available.acquire()
        with self._lock:
            if self._closed:
                self._available.release()
                raise RuntimeError("pool is closed")
            if self._idle:
                return self._idle.pop()
            self._created += 1
        try:
            return ServerClient(self.port, host=self.host,
                                timeout=self.timeout)
        except BaseException:
            with self._lock:
                self._created -= 1
            self._available.release()
            raise

    def release(self, client: ServerClient, *, broken: bool = False) -> None:
        with self._lock:
            if broken or self._closed:
                self._created -= 1
                try:
                    client.close()
                except OSError:
                    pass
            else:
                self._idle.append(client)
        self._available.release()

    class _Lease:
        def __init__(self, pool: "ClientPool"):
            self._pool = pool
            self.client: Optional[ServerClient] = None

        def __enter__(self) -> ServerClient:
            self.client = self._pool.acquire()
            return self.client

        def __exit__(self, exc_type, exc, tb) -> None:
            broken = isinstance(exc, (ConnectionError, OSError))
            self._pool.release(self.client, broken=broken)

    def connection(self) -> "_Lease":
        return self._Lease(self)

    def execute(self, q: str, *, params: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None) -> ServerResult:
        with self.connection() as client:
            return client.execute(q, params=params, timeout=timeout)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            try:
                client.close()
            except OSError:
                pass

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
