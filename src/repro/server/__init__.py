"""repro.server — the concurrent multi-client network front end.

The paper's system was a single-user research prototype on EXODUS;
this package adds the operational layer a shared database needs:
a newline-delimited JSON protocol over TCP, MVCC snapshot reads on a
thread pool, one serialized writer whose WAL fsyncs are shared across
connections (cross-connection group commit), explicit transactions,
admission control, per-query timeouts, graceful shutdown, and an HTTP
``/metrics`` endpoint.  See DESIGN.md §11.

Quick start::

    from repro.server import Server, ServerThread
    from repro.server.client import ServerClient

    with ServerThread(Server("./dbdir", metrics_port=0)) as hosted:
        with ServerClient(hosted.server.port) as client:
            client.execute("define type Emp: ( name: string )")
"""

from .client import ClientPool, ServerClient, ServerError, ServerResult
from .protocol import ERROR_CODES, ProtocolError
from .server import QueryTimeout, Server, ServerThread

__all__ = ["Server", "ServerThread", "ServerClient", "ServerError",
           "ServerResult", "ClientPool", "ProtocolError", "QueryTimeout",
           "ERROR_CODES"]
