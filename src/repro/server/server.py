"""The concurrent network server: many clients, one database.

Concurrency model (see DESIGN.md §11):

* The asyncio event loop owns accept, framing, dispatch, and all
  server bookkeeping — none of it is touched from worker threads
  except through ``call_soon_threadsafe``.
* **Reads** (scripts of side-effect-free retrieves) each take an MVCC
  snapshot (:meth:`~repro.storage.txn.TransactionManager.snapshot`)
  and evaluate on a bounded reader thread pool, so any number of
  clients read concurrently while writers keep committing.  Reader
  plans get the full treatment: statistics collected from the snapshot
  itself, the cost-based optimizer, and index probes against the
  snapshot's frozen :class:`~repro.storage.indexes.IndexCatalogView`
  (epoch-stamped, so a probe can never surface rows newer than the
  snapshot).  Compiled plans are cached per connection, keyed by
  (script text, index epoch, options, range bindings) — the epoch key
  invalidates the cache on every commit, including index DDL.
* **Writes** are serialized through one writer thread.  The writer
  drains its queue up to ``max_batch`` jobs and executes the whole
  batch inside ``wal.group()`` — per-statement commits append to the
  log without fsyncing, and one ``sync_now()`` at batch end makes them
  all durable.  Client futures resolve only after that fsync
  (ack-after-fsync), so a crash can only lose writes nobody was told
  succeeded.  This is cross-connection group commit: N clients'
  autocommits cost one fsync.
* **Explicit transactions** (``txn: begin``) take the write mutex for
  the duration — the storage layer supports one active transaction —
  and every statement from that client (reads included, which must see
  its uncommitted writes) runs on the writer thread against the live
  database until commit/abort.  Disconnect aborts.
* **Admission control**: at most ``max_clients`` connections, at most
  ``queue_depth`` admitted-but-unfinished queries; excess requests get
  an immediate ``admission`` error rather than unbounded queueing.
* **Timeouts**: snapshot reads are cancelled cooperatively — the
  guarded snapshot raises at the next store access — and the client
  gets a ``timeout`` error as soon as the deadline passes.  A write
  still waiting in the queue at its deadline is skipped; one already
  executing runs to completion (a mutation cannot be abandoned
  mid-flight), so its response may arrive late rather than never.
* **Graceful shutdown** stops accepting, drains in-flight work (up to
  ``drain_timeout``), stops the writer, fsyncs the WAL, checkpoints a
  durable database, and closes every connection.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple, Union

from ..api import Connection
from ..core.engine import compile_plan
from ..core.engine.batch import DEFAULT_BATCH_SIZE, compile_batch_plan
from ..core.expr import _UNBOUND, EvalContext, evaluate
from ..core.optimizer import CostModel, Optimizer, Statistics
from ..options import ExecutionOptions
from ..excess import ast
from ..excess.parser import Parser
from ..excess.session import Result
from ..excess.translate import TranslationError, Translator
from ..lang import Lexer, ParseError
from ..obs import Tracer
from ..obs.metrics import (DEREF_CACHE_HITS_TOTAL, DEREF_CACHE_MISSES_TOTAL,
                           QUERIES_TOTAL, QUERY_SECONDS,
                           SERVER_ADMISSION_REJECTS_TOTAL,
                           SERVER_CONNECTIONS_ACTIVE,
                           SERVER_CONNECTIONS_TOTAL, SERVER_ERRORS_TOTAL,
                           SERVER_GROUP_COMMIT_BATCH,
                           SERVER_INFLIGHT_QUERIES,
                           SERVER_PLAN_CACHE_HITS, SERVER_PLAN_CACHE_MISSES,
                           SERVER_QUERIES_QUEUED, SERVER_REQUESTS_TOTAL,
                           SERVER_TIMEOUTS_TOTAL, SLOW_QUERIES_TOTAL)
from ..storage import Database, load_database, open_database
from ..storage.txn import TxnError
from .protocol import (ProtocolError, Request, bind_params, classify_source,
                       decode_request, encode_response, error_response,
                       result_response)

__all__ = ["Server", "ServerThread", "QueryTimeout"]

_MISSING = object()


class QueryTimeout(RuntimeError):
    """A query exceeded its deadline (or the server is shutting down)."""


class _Guard:
    """Cooperative cancellation token for one snapshot read."""

    __slots__ = ("deadline", "cancelled")

    def __init__(self, deadline: Optional[float]):
        self.deadline = deadline
        self.cancelled = threading.Event()

    def check(self) -> None:
        if self.cancelled.is_set():
            raise QueryTimeout("query cancelled")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeout("query deadline exceeded")


class _GuardedStore:
    """A snapshot store that checks the guard on every access, so a
    cancelled reader dies at its next object fetch or extent scan."""

    def __init__(self, store, guard: _Guard):
        self._store = store
        self._guard = guard

    def get(self, oid, default=_MISSING):
        self._guard.check()
        if default is _MISSING:
            return self._store.get(oid)
        return self._store.get(oid, default)

    def exact_type(self, oid):
        self._guard.check()
        return self._store.exact_type(oid)

    def extent(self, type_name):
        self._guard.check()
        return self._store.extent(type_name)

    def extent_closure(self, type_name):
        self._guard.check()
        return self._store.extent_closure(type_name)

    def find_ref(self, value):
        self._guard.check()
        return self._store.find_ref(value)

    def insert(self, value, type_name=None):
        self._guard.check()
        return self._store.insert(value, type_name)

    def __contains__(self, oid):
        self._guard.check()
        return oid in self._store

    def __len__(self):
        return len(self._store)

    def __getattr__(self, name):
        # hierarchy / oids / version / snapshot_version pass through.
        return getattr(self._store, name)


class _GuardedNamed:
    """Named-object view with the same per-access guard check."""

    def __init__(self, named, guard: _Guard):
        self._named = named
        self._guard = guard

    def __getitem__(self, name):
        self._guard.check()
        return self._named[name]

    def get(self, name, default=None):
        self._guard.check()
        return self._named.get(name, default)

    def __contains__(self, name):
        return name in self._named

    def keys(self):
        return self._named.keys()

    def __iter__(self):
        return iter(self._named)


class _PlanCache:
    """Per-connection cache of compiled read-script plans.

    Keys carry everything that shapes the plan besides the data:
    (script source, engine, access_paths, batch_size, range bindings).
    The data dimension is the **index epoch** the script was compiled
    at — the cache holds plans for exactly one epoch and clears itself
    the first time it is consulted at a newer one, so every commit
    (data or index DDL) invalidates wholesale.  Compiled plans consult
    ``ctx.indexes`` at run time, so a cached plan re-executes correctly
    against any snapshot of the same epoch.

    Traced (EXPLAIN ANALYZE) plans carry per-run span state and never
    enter the cache.  Eviction is LRU at ``capacity`` entries.
    """

    __slots__ = ("capacity", "entries", "epoch", "lock")

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self.entries: "OrderedDict[Tuple, List[Tuple]]" = OrderedDict()
        self.epoch: Optional[int] = None
        self.lock = threading.Lock()

    def get(self, key: Tuple, epoch: int) -> Optional[List[Tuple]]:
        with self.lock:
            if epoch != self.epoch:
                self.entries.clear()
                self.epoch = epoch
                return None
            steps = self.entries.get(key)
            if steps is not None:
                self.entries.move_to_end(key)
            return steps

    def put(self, key: Tuple, epoch: int, steps: List[Tuple]) -> None:
        with self.lock:
            if epoch != self.epoch:
                self.entries.clear()
                self.epoch = epoch
            self.entries[key] = steps
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)


class _WriteJob:
    """One write script queued for the writer thread."""

    __slots__ = ("conn", "source", "future", "started", "cancelled")

    def __init__(self, conn: Connection, source: str,
                 future: "asyncio.Future"):
        self.conn = conn
        self.source = source
        self.future = future
        self.started = False
        self.cancelled = False


class _ClientState:
    """Per-connection bookkeeping on the event loop."""

    __slots__ = ("name", "conn", "in_txn", "plan_cache")

    def __init__(self, name: str, conn: Connection):
        self.name = name
        self.conn = conn
        self.in_txn = False
        self.plan_cache = _PlanCache()


class Server:
    """A multi-client server over one database.

    *database* accepts the same flavors as :func:`repro.connect`:
    ``None`` (fresh in-memory), a :class:`~repro.storage.Database`, a
    ``.json`` image path, or a durable directory (WAL + snapshot —
    the flavor that makes group commit observable).
    """

    def __init__(self, database: Union[Database, str, os.PathLike,
                                       None] = None,
                 options: Optional[ExecutionOptions] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 engine: str = "compiled", max_clients: int = 64,
                 readers: int = 8, queue_depth: int = 64,
                 query_timeout: float = 30.0, drain_timeout: float = 5.0,
                 max_batch: int = 64, metrics_port: Optional[int] = None,
                 slow_query_threshold: Optional[float] = 0.1):
        if database is None:
            self.db = Database()
        elif isinstance(database, Database):
            self.db = database
        else:
            path = os.fspath(database)
            self.db = (load_database(path) if path.endswith(".json")
                       else open_database(path))
        self.host = host
        self.port = port
        # One ExecutionOptions for every connection the server opens;
        # the bare ``engine=`` keyword survives as a convenience and is
        # folded in when no options value is given.
        self.options = (options if options is not None
                        else ExecutionOptions(engine=engine))
        self.engine = self.options.engine
        self.max_clients = max_clients
        # ExecutionOptions.readers (validated >= 1) wins over the bare
        # constructor keyword, which survives as a convenience.
        if self.options.readers is not None:
            readers = self.options.readers
        self.readers = max(1, readers)
        self.queue_depth = queue_depth
        self.query_timeout = query_timeout
        self.drain_timeout = drain_timeout
        self.max_batch = max_batch
        self.metrics_port = metrics_port
        self.slow_query_threshold = slow_query_threshold
        # The admin connection registers builtins/type system once and
        # supplies the shared optimizer + slow-query log; per-client
        # connections reuse both (only the serialized writer thread
        # ever optimizes, so sharing is safe).
        self._admin = Connection(self.db, self.options,
                                 slow_query_threshold=slow_query_threshold)
        self._optimizer = self._admin.session.optimizer
        self.slow_log = self._admin.slow_log
        # MVCC needs a manager attached even for in-memory databases.
        self.manager = self.db.transactions()
        # Snapshot statistics memoized per index epoch: equal epochs
        # imply identical visible data, so every reader compiling at
        # the same epoch shares one Statistics pass.  Racing readers
        # may both compute; the (epoch, stats) tuple swap is GIL-atomic.
        self._stats_by_epoch: Optional[Tuple[int, Statistics]] = None
        self._clients: Dict[int, _ClientState] = {}
        self._client_ids = itertools.count(1)
        self._backlog = 0      # admitted but unfinished queries
        self._inflight = 0     # actually executing right now
        self._closing = False
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._write_queue: Optional[asyncio.Queue] = None
        self._write_mutex: Optional[asyncio.Lock] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._write_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer")
        self._read_executor = ThreadPoolExecutor(
            max_workers=self.readers, thread_name_prefix="repro-reader")
        self.metrics_address: Optional[tuple] = None

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time operational snapshot (the /stats endpoint)."""
        return {
            "connections": len(self._clients),
            "backlog": self._backlog,
            "inflight": self._inflight,
            "queue_depth": self.queue_depth,
            "max_clients": self.max_clients,
            "closing": self._closing,
            "engine": self.engine,
            "readers": self.readers,
            "mvcc_version": self.manager.version,
            "index_epoch": self.manager.index_epoch,
        }

    def _set_gauges(self) -> None:
        SERVER_CONNECTIONS_ACTIVE.set(len(self._clients))
        SERVER_INFLIGHT_QUERIES.set(self._inflight)
        SERVER_QUERIES_QUEUED.set(max(0, self._backlog - self._inflight))

    # -- lifecycle -----------------------------------------------------

    async def serve(self, on_ready=None) -> None:
        """Listen, serve until shutdown is requested, then drain and
        stop.  *on_ready* (if given) is called with the server once the
        sockets are bound — ``self.port`` holds the real port by then."""
        self._loop = asyncio.get_running_loop()
        self._write_queue = asyncio.Queue()
        self._write_mutex = asyncio.Lock()
        self._shutdown_requested = asyncio.Event()
        tcp = await asyncio.start_server(self._handle_client,
                                         self.host, self.port)
        self.port = tcp.sockets[0].getsockname()[1]
        http = None
        if self.metrics_port is not None:
            from .http import MetricsHTTP
            http = MetricsHTTP(self, self.host, self.metrics_port)
            await http.start()
            self.metrics_address = http.address
        writer_task = asyncio.create_task(self._writer_loop())
        self._started = True
        try:
            if on_ready is not None:
                on_ready(self)
            await self._shutdown_requested.wait()
            self._closing = True
            tcp.close()
            await tcp.wait_closed()
            await self._drain()
            await self._stop_writer(writer_task)
            await self._flush_and_checkpoint()
        finally:
            self._closing = True
            tcp.close()
            if http is not None:
                await http.stop()
            self._write_executor.shutdown(wait=False)
            self._read_executor.shutdown(wait=False)

    def request_shutdown(self) -> None:
        """Begin graceful shutdown; safe from any thread or a signal
        handler (idempotent)."""
        loop = self._loop
        if loop is None or self._shutdown_requested is None:
            return
        loop.call_soon_threadsafe(self._shutdown_requested.set)

    async def _drain(self) -> None:
        deadline = time.monotonic() + self.drain_timeout
        while self._backlog > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        # A transaction stranded past the drain window is aborted so
        # the checkpoint below can run (its writes were never acked as
        # committed, so dropping them is correct).
        for state in list(self._clients.values()):
            if state.in_txn:
                await self._loop.run_in_executor(
                    self._write_executor, self._safe_abort, state.conn)
                state.in_txn = False
                self._release_write_mutex()

    async def _stop_writer(self, writer_task: "asyncio.Task") -> None:
        await self._write_queue.put(None)
        await writer_task

    async def _flush_and_checkpoint(self) -> None:
        def _finalize():
            if self.manager.wal is not None:
                self.manager.wal.sync_now()
            if (self.manager.snapshot_path is not None
                    and self.manager.active is None):
                self.manager.checkpoint()
        await self._loop.run_in_executor(self._write_executor, _finalize)

    @staticmethod
    def _safe_abort(conn: Connection) -> None:
        try:
            conn.abort()
        except TxnError:
            pass

    def _release_write_mutex(self) -> None:
        if self._write_mutex is not None and self._write_mutex.locked():
            self._write_mutex.release()

    def run(self, on_ready=None) -> None:
        """Blocking entry point with SIGINT/SIGTERM wired to graceful
        shutdown (the CLI's ``serve`` and ``python -m repro.server``).
        *on_ready* runs once listening, after the default announcement."""
        def _announce(server):
            print("repro.server listening on %s:%d%s"
                  % (server.host, server.port,
                     (" (metrics on :%d)" % server.metrics_address[1])
                     if server.metrics_address else ""), flush=True)
            if on_ready is not None:
                on_ready(server)

        async def main():
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
            await self.serve(on_ready=_announce)

        asyncio.run(main())

    # -- connection handling -------------------------------------------

    async def _handle_client(self, reader: "asyncio.StreamReader",
                             writer: "asyncio.StreamWriter") -> None:
        if self._closing:
            writer.write(encode_response(error_response(
                "shutdown", "server is shutting down")))
            await _close_writer(writer)
            return
        if len(self._clients) >= self.max_clients:
            SERVER_ADMISSION_REJECTS_TOTAL.inc()
            SERVER_ERRORS_TOTAL.inc(code="admission")
            writer.write(encode_response(error_response(
                "admission", "too many clients (max %d)" % self.max_clients)))
            await _close_writer(writer)
            return
        cid = next(self._client_ids)
        name = "c%d" % cid
        conn = Connection(self.db, self.options,
                          optimizer=self._optimizer,
                          slow_query_threshold=self.slow_query_threshold)
        conn.slow_log = self.slow_log
        conn.client_id = name
        state = _ClientState(name, conn)
        self._clients[cid] = state
        SERVER_CONNECTIONS_TOTAL.inc()
        self._set_gauges()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_request(state, line)
                writer.write(encode_response(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if state.in_txn:
                await self._loop.run_in_executor(
                    self._write_executor, self._safe_abort, conn)
                state.in_txn = False
                self._release_write_mutex()
            self._clients.pop(cid, None)
            self._set_gauges()
            await _close_writer(writer)

    # -- request dispatch ----------------------------------------------

    async def _handle_request(self, state: _ClientState,
                              line: bytes) -> Dict[str, Any]:
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            SERVER_ERRORS_TOTAL.inc(code=exc.code)
            return error_response(exc.code, str(exc))
        if self._closing:
            SERVER_ERRORS_TOTAL.inc(code="shutdown")
            return error_response("shutdown", "server is shutting down",
                                  request.id)
        try:
            source = (bind_params(request.q, request.params)
                      if request.q is not None else None)
        except ProtocolError as exc:
            SERVER_ERRORS_TOTAL.inc(code=exc.code)
            return error_response(exc.code, str(exc), request.id)
        timeout = min(request.timeout or self.query_timeout,
                      self.query_timeout)
        try:
            if request.txn is not None:
                return await self._handle_txn(state, request, source, timeout)
            return await self._handle_query(state, request, source, timeout)
        except Exception as exc:  # pragma: no cover - defensive belt
            SERVER_ERRORS_TOTAL.inc(code="execute")
            return error_response("execute", "%s: %s"
                                  % (type(exc).__name__, exc), request.id)

    async def _handle_txn(self, state: _ClientState, request: Request,
                          source: Optional[str],
                          timeout: float) -> Dict[str, Any]:
        SERVER_REQUESTS_TOTAL.inc(kind="txn")
        verb = request.txn
        conn = state.conn
        run = self._run_on_writer
        if verb == "begin":
            if state.in_txn:
                SERVER_ERRORS_TOTAL.inc(code="txn")
                return error_response("txn", "transaction already open",
                                      request.id)
            try:
                await asyncio.wait_for(self._write_mutex.acquire(), timeout)
            except asyncio.TimeoutError:
                SERVER_TIMEOUTS_TOTAL.inc()
                SERVER_ERRORS_TOTAL.inc(code="timeout")
                return error_response(
                    "timeout", "could not acquire the write lock",
                    request.id)
            try:
                await run(conn.begin)
                state.in_txn = True
                if source is not None:
                    results = await run(self._execute_script, conn, source)
                    return result_response(results, request.id)
                return result_response([], request.id)
            except Exception as exc:
                if not state.in_txn:
                    self._release_write_mutex()
                return self._map_error(exc, request.id)
        if verb == "atomic":
            if state.in_txn:
                # Already transactional: just run the script inside it.
                return await self._handle_query(state, request, source,
                                               timeout)
            try:
                await asyncio.wait_for(self._write_mutex.acquire(), timeout)
            except asyncio.TimeoutError:
                SERVER_TIMEOUTS_TOTAL.inc()
                SERVER_ERRORS_TOTAL.inc(code="timeout")
                return error_response(
                    "timeout", "could not acquire the write lock",
                    request.id)
            try:
                results = await run(self._run_atomic, conn, source)
                return result_response(results, request.id)
            except Exception as exc:
                return self._map_error(exc, request.id)
            finally:
                self._release_write_mutex()
        # commit / abort
        if not state.in_txn:
            SERVER_ERRORS_TOTAL.inc(code="txn")
            return error_response("txn", "no open transaction", request.id)
        try:
            results: List[Result] = []
            if source is not None:
                results = await run(self._execute_script, conn, source)
            if verb == "commit":
                await run(conn.commit)
            else:
                await run(self._safe_abort, conn)
            return result_response(results, request.id)
        except Exception as exc:
            await run(self._safe_abort, conn)
            return self._map_error(exc, request.id)
        finally:
            state.in_txn = False
            self._release_write_mutex()

    async def _handle_query(self, state: _ClientState, request: Request,
                            source: Optional[str],
                            timeout: float) -> Dict[str, Any]:
        if source is None:
            SERVER_ERRORS_TOTAL.inc(code="protocol")
            return error_response("protocol", 'request needs "q"',
                                  request.id)
        kind = "write" if state.in_txn else classify_source(source)
        SERVER_REQUESTS_TOTAL.inc(kind=kind)
        if request.explain and kind != "read":
            # Traced execution needs the snapshot read path; scripts
            # with side effects (or inside a transaction) run on the
            # writer against live state, where a per-request tracer
            # would race the connection's shared session.
            SERVER_ERRORS_TOTAL.inc(code="protocol")
            return error_response(
                "protocol", '"explain" is only supported for read-only '
                'scripts outside a transaction', request.id)
        if state.in_txn:
            # Statements inside an explicit transaction run on the
            # writer thread against the live database (they must see
            # the transaction's own uncommitted writes).
            try:
                results = await self._run_on_writer(
                    self._execute_script, state.conn, source)
                return result_response(results, request.id)
            except Exception as exc:
                return self._map_error(exc, request.id)
        if self._backlog >= self.queue_depth:
            SERVER_ADMISSION_REJECTS_TOTAL.inc()
            SERVER_ERRORS_TOTAL.inc(code="admission")
            return error_response(
                "admission", "server is saturated (queue depth %d)"
                % self.queue_depth, request.id)
        self._backlog += 1
        self._set_gauges()
        if kind == "read":
            return await self._dispatch_read(state, request, source, timeout)
        return await self._dispatch_write(state, request, source, timeout)

    def _map_error(self, exc: Exception, request_id: Any) -> Dict[str, Any]:
        if isinstance(exc, QueryTimeout):
            code = "timeout"
            SERVER_TIMEOUTS_TOTAL.inc()
        elif isinstance(exc, (ParseError, TranslationError)):
            code = "parse"
        elif isinstance(exc, TxnError):
            code = "txn"
        else:
            code = "execute"
        SERVER_ERRORS_TOTAL.inc(code=code)
        return error_response(code, "%s: %s" % (type(exc).__name__, exc),
                              request_id)

    # -- read path ------------------------------------------------------

    async def _dispatch_read(self, state: _ClientState, request: Request,
                             source: str, timeout: float) -> Dict[str, Any]:
        guard = _Guard(time.monotonic() + timeout)
        self._inflight += 1
        self._set_gauges()
        future = self._loop.run_in_executor(
            self._read_executor, self._execute_read, state, source,
            guard, request.explain)
        future.add_done_callback(
            lambda f: self._loop.call_soon_threadsafe(self._read_done, f))
        try:
            results = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            guard.cancelled.set()
            SERVER_TIMEOUTS_TOTAL.inc()
            SERVER_ERRORS_TOTAL.inc(code="timeout")
            return error_response(
                "timeout", "query exceeded %.3fs" % timeout, request.id)
        except Exception as exc:
            return self._map_error(exc, request.id)
        self._observe_results(state.conn, results)
        explain_text = None
        if request.explain:
            for result in reversed(results):
                explain_text = getattr(result, "explain_text", None)
                if explain_text is not None:
                    break
        return result_response(results, request.id, explain=explain_text)

    def _read_done(self, future) -> None:
        self._backlog -= 1
        self._inflight -= 1
        self._set_gauges()
        if not future.cancelled():
            future.exception()  # swallow: the handler already responded

    def _execute_read(self, state: _ClientState, source: str,
                      guard: _Guard, explain: bool = False) -> List[Result]:
        """Reader-thread body: evaluate a read-only script against a
        guarded MVCC snapshot with the full optimizer + access paths.

        Probes go through the snapshot's frozen
        :class:`~repro.storage.indexes.IndexCatalogView`; statistics
        and the cost model are built from the snapshot itself, so plan
        choice, compilation, and execution all see one epoch.  Compiled
        plans are cached per connection keyed by (source, epoch,
        options, ranges) — a hit skips parse/optimize/compile entirely.
        """
        conn = state.conn
        session = conn.session
        view = self.manager.snapshot()
        ctx = EvalContext(database=_GuardedNamed(view.named, guard),
                          store=_GuardedStore(view.store, guard),
                          functions=self.db.functions,
                          methods=self.db.methods, indexes=view.indexes)
        if explain:
            return self._execute_read_traced(conn, source, view, ctx, guard)
        mode = session.engine
        cache = state.plan_cache
        key = (source, mode, session.access_paths, session.batch_size,
               tuple(sorted(session.ranges.items())))
        steps = cache.get(key, view.version)
        if steps is None:
            SERVER_PLAN_CACHE_MISSES.inc()
            steps = self._compile_read(session, source, view)
            cache.put(key, view.version, steps)
        else:
            SERVER_PLAN_CACHE_HITS.inc()
        results: List[Result] = []
        for step in steps:
            if step[0] == "range":
                _, statement, bindings = step
                for var, collection in bindings:
                    session.ranges[var] = collection
                results.append(Result(statement, None, engine=mode))
                continue
            guard.check()
            ctx.begin_query()
            started = perf_counter()
            if step[0] == "plan":
                _, statement, expr, plan = step
                value = plan.execute(ctx, _UNBOUND)
            else:
                _, statement, expr = step
                value = evaluate(expr, ctx, mode="interpreted")
            result = Result(statement, expr, value, None, stats=ctx.stats)
            result.seconds = perf_counter() - started
            result.engine = mode
            results.append(result)
        return results

    def _snapshot_cost_model(self, view, mode: str) -> CostModel:
        """Statistics + cost model bound to *view*: collection stats
        come from the snapshot (thread-safe — the live tables are never
        walked), memoized per epoch, and the model prices probes
        against the snapshot's frozen catalog."""
        cached = self._stats_by_epoch
        if cached is not None and cached[0] == view.version:
            stats = cached[1]
        else:
            stats = Statistics.from_database(view)
            self._stats_by_epoch = (view.version, stats)
        return CostModel(stats, engine=mode, indexes=view.indexes)

    def _compile_read(self, session, source: str, view) -> List[Tuple]:
        """Parse, translate, optimize, and compile a read script into
        replayable steps (the plan-cache values).

        Compiled plans resolve the catalog through ``ctx.indexes`` at
        run time, so a step compiled here executes correctly against
        any snapshot of the same epoch.  Reader threads run serial even
        on the batched engine: forking partition workers from a
        threaded asyncio process is unsafe, and the snapshot guard
        wraps this thread only.
        """
        mode = session.engine
        model = self._snapshot_cost_model(view, mode)
        optimizer = Optimizer(cost_model=model, max_depth=3, max_trees=500)
        steps: List[Tuple] = []
        lexer = Lexer(source)
        while not lexer.at_end():
            parser = Parser.__new__(Parser)
            parser.lexer = lexer
            statement = parser.parse_statement()
            if isinstance(statement, ast.RangeDecl):
                for var, collection in statement.bindings:
                    if collection not in view.named:
                        raise TranslationError(
                            "range over unknown object %r" % collection)
                    session.ranges[var] = collection
                steps.append(("range", statement,
                              tuple(statement.bindings)))
                continue
            expr, _ = Translator(self.db, session.ranges) \
                .translate_retrieve(statement)
            expr = optimizer.optimize(expr).best
            if mode == "interpreted":
                steps.append(("expr", statement, expr))
                continue
            if mode == "batched":
                size = (DEFAULT_BATCH_SIZE if session.batch_size is None
                        else session.batch_size)
                plan = compile_batch_plan(expr, cost_model=model,
                                          access_paths=session.access_paths,
                                          batch_size=size)
            else:
                plan = compile_plan(expr, cost_model=model,
                                    access_paths=session.access_paths)
            steps.append(("plan", statement, expr, plan))
        return steps

    def _execute_read_traced(self, conn: Connection, source: str, view,
                             ctx: EvalContext,
                             guard: _Guard) -> List[Result]:
        """EXPLAIN ANALYZE for a read script: compile fresh under a
        per-request tracer (traced plans carry per-run span state, so
        they never touch the plan cache), then render each retrieve's
        plan with the snapshot cost model — the same model the local
        ``.analyze`` builds — so ``via index probe[...]`` / ``via
        scan[...]`` annotations survive the wire."""
        from ..core.values import MultiSet
        session = conn.session
        mode = session.engine
        model = self._snapshot_cost_model(view, mode)
        optimizer = Optimizer(cost_model=model, max_depth=3, max_trees=500)
        tracer = Tracer(enabled=True)
        tracer.client_id = getattr(conn, "client_id", "") or ""
        ctx.tracer = tracer
        results: List[Result] = []
        lexer = Lexer(source)
        while not lexer.at_end():
            parser = Parser.__new__(Parser)
            parser.lexer = lexer
            statement = parser.parse_statement()
            if isinstance(statement, ast.RangeDecl):
                for var, collection in statement.bindings:
                    if collection not in view.named:
                        raise TranslationError(
                            "range over unknown object %r" % collection)
                    session.ranges[var] = collection
                results.append(Result(statement, None, engine=mode))
                continue
            guard.check()
            expr, _ = Translator(self.db, session.ranges) \
                .translate_retrieve(statement)
            expr = optimizer.optimize(expr).best
            ctx.begin_query()
            tracer.begin("retrieve", kind="statement")
            started = perf_counter()
            try:
                value = evaluate(expr, ctx, mode=mode, cost_model=model,
                                 access_paths=session.access_paths,
                                 batch_size=session.batch_size)
            finally:
                elapsed = perf_counter() - started
                root = tracer.end()
            result = Result(statement, expr, value, None, stats=ctx.stats)
            result.seconds = elapsed
            result.engine = mode
            if root is not None:
                root.calls = 1
                root.wall = elapsed
                root.rows_out = 1 if value is not None else 0
                if isinstance(value, MultiSet):
                    root.card_out = len(value)
                result.trace = root
                result.explain_text = result.explain(cost_model=model)
            results.append(result)
        return results

    def _observe_results(self, conn: Connection,
                         results: List[Result]) -> None:
        """Feed the read path's results into the same instruments
        :meth:`repro.Connection.execute` feeds on the write path."""
        QUERIES_TOTAL.inc(max(len(results), 1))
        QUERY_SECONDS.observe(sum(r.seconds for r in results))
        for result in results:
            if result.stats.deref_cache_hit:
                DEREF_CACHE_HITS_TOTAL.inc(result.stats.deref_cache_hit)
            if result.stats.deref_cache_miss:
                DEREF_CACHE_MISSES_TOTAL.inc(result.stats.deref_cache_miss)
            if result.seconds and self.slow_log.observe(
                    _source_of(result), result.seconds,
                    stats=result.stats.as_dict(), engine=result.engine,
                    client=conn.client_id):
                SLOW_QUERIES_TOTAL.inc()

    # -- write path -----------------------------------------------------

    async def _dispatch_write(self, state: _ClientState, request: Request,
                              source: str, timeout: float) -> Dict[str, Any]:
        job = _WriteJob(state.conn, source, self._loop.create_future())
        await self._write_queue.put(job)
        try:
            results = await asyncio.wait_for(asyncio.shield(job.future),
                                             timeout)
        except asyncio.TimeoutError:
            if job.started:
                # The mutation is already executing; it cannot be
                # abandoned, so ride it out and answer late.
                try:
                    results = await job.future
                except Exception as exc:
                    return self._map_error(exc, request.id)
                return result_response(results, request.id)
            job.cancelled = True
            SERVER_TIMEOUTS_TOTAL.inc()
            SERVER_ERRORS_TOTAL.inc(code="timeout")
            return error_response(
                "timeout", "write timed out after %.3fs in queue" % timeout,
                request.id)
        except Exception as exc:
            return self._map_error(exc, request.id)
        return result_response(results, request.id)

    async def _writer_loop(self) -> None:
        """Drain the write queue into group-committed batches."""
        while True:
            job = await self._write_queue.get()
            if job is None:
                return
            batch = [job]
            while len(batch) < self.max_batch:
                try:
                    extra = self._write_queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    self._write_queue.put_nowait(None)
                    break
                batch.append(extra)
            live = len([j for j in batch if not j.cancelled])
            self._inflight += live
            self._set_gauges()
            async with self._write_mutex:
                await self._loop.run_in_executor(
                    self._write_executor, self._run_batch, batch)

    def _run_batch(self, batch: List[_WriteJob]) -> None:
        """Writer-thread body: execute every job's script (autocommit
        per statement) with per-commit fsyncs suspended, fsync once,
        then resolve the futures — ack strictly after durability."""
        outcomes = []
        executed = 0
        wal = self.manager.wal
        group = wal.group() if wal is not None else nullcontext()
        with group:
            for job in batch:
                if job.cancelled:
                    outcomes.append((job, None, None))
                    continue
                job.started = True
                executed += 1
                try:
                    result = job.conn.execute(job.source)
                    outcomes.append((job, result.all, None))
                except Exception as exc:
                    outcomes.append((job, None, exc))
        if executed:
            SERVER_GROUP_COMMIT_BATCH.observe(executed)
        self._loop.call_soon_threadsafe(self._batch_done, outcomes)

    def _batch_done(self, outcomes) -> None:
        for job, results, exc in outcomes:
            self._backlog -= 1
            if job.started:
                self._inflight -= 1
            if job.future.done():
                continue
            if exc is not None:
                job.future.set_exception(exc)
                # The handler may have timed out already; mark retrieved.
                job.future.exception()
            elif results is not None:
                job.future.set_result(results)
            else:
                job.future.cancel()
        self._set_gauges()

    # -- writer-thread helpers ------------------------------------------

    async def _run_on_writer(self, fn, *args):
        return await self._loop.run_in_executor(self._write_executor,
                                                fn, *args)

    @staticmethod
    def _execute_script(conn: Connection, source: str) -> List[Result]:
        result = conn.execute(source)
        return result.all

    def _run_atomic(self, conn: Connection, source: str) -> List[Result]:
        conn.begin()
        try:
            results = self._execute_script(conn, source)
        except BaseException:
            self._safe_abort(conn)
            raise
        conn.commit()
        return results


def _source_of(result: Result) -> str:
    statement = result.statement
    if isinstance(statement, str):
        return "(%s)" % statement
    return getattr(statement, "source", None) or repr(statement)


async def _close_writer(writer: "asyncio.StreamWriter") -> None:
    try:
        await writer.drain()
    except ConnectionError:
        pass
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass


class ServerThread:
    """Run a :class:`Server` on a daemon thread — the harness tests,
    the smoke script, and the benchmark all use this to host a server
    inside the driving process."""

    def __init__(self, server: Server):
        self.server = server
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-server", daemon=True)

    def _main(self) -> None:
        try:
            asyncio.run(self.server.serve(
                on_ready=lambda _s: self._ready.set()))
        except BaseException as exc:  # pragma: no cover - surfaced below
            self._error = exc
        finally:
            self._ready.set()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start within %.1fs" % timeout)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self.server.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server did not stop within %.1fs" % timeout)
        if self._error is not None:
            raise RuntimeError("server crashed") from self._error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
