"""The wire protocol: newline-delimited JSON requests and responses.

One request per line, one response per line, in order.  A request is a
JSON object::

    {"q": "retrieve (e.name) from e in Emp", "params": {...},
     "txn": "begin"|"commit"|"abort"|"atomic", "timeout": 2.5, "id": 7}

* ``q`` — an EXCESS/EXTRA script (any mix of DDL and DML statements);
* ``params`` — optional ``$name`` substitutions (int/float/str/bool),
  spliced as literals before parsing;
* ``txn`` — optional transaction control.  ``begin``/``commit``/
  ``abort`` bracket an explicit transaction held across requests
  (``q`` may ride along with ``begin``/``commit``); ``atomic`` runs
  this request's ``q`` as one transaction;
* ``timeout`` — per-query seconds, capped by the server's limit;
* ``explain`` — ``true`` (or ``"analyze"``): run a read-only script
  under tracing and return the last statement's EXPLAIN ANALYZE text
  (access-path annotations included) as ``explain`` in the response;
* ``id`` — opaque, echoed back.

The response::

    {"ok": true, "rows": [...], "kind": "retrieve", "statements": 2,
     "seconds": 0.0012, "stats": {...}, "id": 7}
    {"ok": false, "error": {"code": "timeout", "message": "..."}, "id": 7}

``rows`` is the last statement's result rendered with the storage
layer's tagged value encoding (:func:`repro.core.serialize.value_to_json`),
so references, tuples, arrays, and multisets survive the wire exactly.

Error codes (:data:`ERROR_CODES`): ``protocol`` (malformed request),
``parse`` (bad EXCESS/EXTRA source), ``execute`` (runtime failure),
``txn`` (illegal transaction control), ``timeout``, ``admission``
(queue full / too many clients), ``shutdown`` (server draining).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.serialize import value_to_json
from ..excess import ast
from ..excess.parser import Parser
from ..lang import Lexer, ParseError

__all__ = ["ERROR_CODES", "ProtocolError", "Request", "decode_request",
           "encode_response", "error_response", "result_response",
           "classify_source", "bind_params"]

#: Every ``error.code`` a response can carry.
ERROR_CODES = ("protocol", "parse", "execute", "txn", "timeout",
               "admission", "shutdown")

#: Transaction-control verbs accepted in the ``txn`` field.
TXN_VERBS = ("begin", "commit", "abort", "atomic")


class ProtocolError(ValueError):
    """A malformed or illegal request; ``code`` picks the error code."""

    def __init__(self, message: str, code: str = "protocol"):
        super().__init__(message)
        assert code in ERROR_CODES
        self.code = code


class Request:
    """One decoded request line."""

    __slots__ = ("q", "params", "txn", "timeout", "id", "explain")

    def __init__(self, q: Optional[str], params: Dict[str, Any],
                 txn: Optional[str], timeout: Optional[float],
                 request_id: Any, explain: bool = False):
        self.q = q
        self.params = params
        self.txn = txn
        self.timeout = timeout
        self.id = request_id
        self.explain = explain


def decode_request(line: bytes) -> Request:
    """Parse one request line; raises :class:`ProtocolError`."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("request is not valid JSON: %s" % exc)
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    q = payload.get("q")
    if q is not None and not isinstance(q, str):
        raise ProtocolError('"q" must be a string')
    txn = payload.get("txn")
    if txn is not None and txn not in TXN_VERBS:
        raise ProtocolError('"txn" must be one of %s' % (TXN_VERBS,),
                            code="txn")
    if q is None and txn is None:
        raise ProtocolError('request needs "q" and/or "txn"')
    if txn == "atomic" and q is None:
        raise ProtocolError('"txn": "atomic" needs a "q" to run',
                            code="txn")
    params = payload.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError('"params" must be an object')
    timeout = payload.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ProtocolError('"timeout" must be a positive number')
        timeout = float(timeout)
    explain = payload.get("explain", False)
    if explain not in (False, True, "analyze"):
        raise ProtocolError('"explain" must be true or "analyze"')
    return Request(q, params, txn, timeout, payload.get("id"),
                   explain=bool(explain))


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------

def encode_response(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, separators=(",", ":"))
            .encode("utf-8") + b"\n")


def error_response(code: str, message: str,
                   request_id: Any = None) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    out: Dict[str, Any] = {"ok": False,
                           "error": {"code": code, "message": message}}
    if request_id is not None:
        out["id"] = request_id
    return out


def result_response(results: List[Any], request_id: Any = None,
                    explain: Optional[str] = None) -> Dict[str, Any]:
    """Render a list of session :class:`~repro.excess.session.Result`
    objects (one script's worth) as the wire response.  *explain* (the
    last statement's EXPLAIN ANALYZE text, when the request asked for
    it) rides along so remote ``.analyze`` output matches local."""
    out: Dict[str, Any] = {"ok": True, "statements": len(results)}
    if results:
        last = results[-1]
        out["kind"] = last.kind
        out["rows"] = [value_to_json(row) for row in last.rows()]
        out["seconds"] = sum(r.seconds for r in results)
        out["stats"] = last.stats.as_dict()
    else:
        out["kind"] = "empty"
        out["rows"] = []
        out["seconds"] = 0.0
        out["stats"] = {}
    if explain is not None:
        out["explain"] = explain
    if request_id is not None:
        out["id"] = request_id
    return out


# ---------------------------------------------------------------------------
# Parameter binding
# ---------------------------------------------------------------------------

def bind_params(source: str, params: Dict[str, Any]) -> str:
    """Splice ``$name`` placeholders as EXCESS literals.

    Values may be int, float, bool, or str.  The lexer has no string
    escapes, so a string is quoted with whichever quote character it
    does not contain; one containing both kinds is rejected.
    """
    if not params and "$" not in source:
        return source
    rendered: Dict[str, str] = {}
    for name, value in params.items():
        if not isinstance(name, str) or not name.isidentifier():
            raise ProtocolError("bad parameter name %r" % (name,))
        rendered[name] = _render_literal(name, value)
    out = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "$":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            name = source[i + 1:j]
            if name not in rendered:
                raise ProtocolError("unbound parameter $%s" % name)
            out.append(rendered[name])
            i = j
            continue
        if ch in "\"'":
            # Skip string literals so a $ inside one stays data.
            j = source.find(ch, i + 1)
            if j < 0:
                j = n - 1
            out.append(source[i:j + 1])
            i = j + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _render_literal(name: str, value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if '"' not in value:
            return '"%s"' % value
        if "'" not in value:
            return "'%s'" % value
        raise ProtocolError(
            "parameter $%s mixes both quote characters" % name)
    raise ProtocolError("parameter $%s has unsupported type %s"
                        % (name, type(value).__name__))


# ---------------------------------------------------------------------------
# Read/write classification
# ---------------------------------------------------------------------------

def classify_source(source: str) -> str:
    """``"read"`` when every statement is side-effect-free (retrieves
    without ``into`` plus range declarations), else ``"write"``.

    Mirrors :meth:`repro.excess.session.Session.run`'s statement loop;
    anything unparseable classifies as a write so the error surfaces on
    the serialized path with full session state available.
    """
    try:
        lexer = Lexer(source)
        while not lexer.at_end():
            token = lexer.peek()
            if token.is_word("define", "create"):
                return "write"
            parser = Parser.__new__(Parser)
            parser.lexer = lexer
            statement = parser.parse_statement()
            if isinstance(statement, ast.RangeDecl):
                continue
            if isinstance(statement, ast.Retrieve) and not statement.into:
                continue
            return "write"
    except ParseError:
        return "write"
    except Exception:
        return "write"
    return "read"
