"""``python -m repro.server`` — run the network server standalone.

The CLI's ``serve`` subcommand delegates here; see
:func:`repro.server.__main__.main` for the flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..options import ExecutionOptions
from .server import Server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.server",
        description="Serve a repro database to concurrent clients over "
                    "newline-delimited JSON.")
    parser.add_argument("--db", default=None,
                        help="database: a durable directory (default: "
                             "fresh in-memory) or a .json image")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474,
                        help="TCP port (0 = ephemeral; default 7474)")
    parser.add_argument("--engine",
                        choices=("compiled", "interpreted", "batched"),
                        default="compiled")
    parser.add_argument("--max-clients", type=int, default=64)
    parser.add_argument("--readers", type=int, default=8,
                        help="snapshot-reader thread pool size")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="admission limit on in-flight queries")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-query timeout ceiling in seconds")
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        help="graceful-shutdown drain window in seconds")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="max write statements per group-commit fsync")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="serve HTTP /metrics on this port (0 = "
                             "ephemeral; omit to disable)")
    parser.add_argument("--slow-threshold", type=float, default=0.1,
                        help="slow-query-log threshold in seconds")
    parser.add_argument("--port-file", default=None,
                        help="write 'port metrics_port' here once "
                             "listening (harness/test hook)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        options = ExecutionOptions(engine=args.engine, readers=args.readers)
    except ValueError as exc:
        build_parser().error(str(exc))
    server = Server(args.db, options, host=args.host, port=args.port,
                    max_clients=args.max_clients,
                    queue_depth=args.queue_depth,
                    query_timeout=args.timeout,
                    drain_timeout=args.drain_timeout,
                    max_batch=args.max_batch,
                    metrics_port=args.metrics_port,
                    slow_query_threshold=args.slow_threshold)

    def write_port_file(srv: Server) -> None:
        if args.port_file:
            metrics = srv.metrics_address[1] if srv.metrics_address else ""
            with open(args.port_file, "w") as fh:
                fh.write("%d %s\n" % (srv.port, metrics))

    server.run(on_ready=write_port_file)
    return 0


if __name__ == "__main__":
    sys.exit(main())
