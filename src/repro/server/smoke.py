"""``python -m repro.server.smoke`` / ``make serve-smoke``.

A scripted multi-client session against an in-process server that
exercises every operational behavior the CI gate cares about:

1.  DDL + parameterized writes from one client, snapshot reads from
    another;
2.  an explicit cross-request transaction with snapshot isolation
    observable from a second client;
3.  a per-query **timeout** (a registered ``snooze`` function sleeps
    past the deadline; the client gets a ``timeout`` error while the
    server keeps serving);
4.  an **admission rejection** (a held transaction blocks the writer,
    pipelined writes fill the small queue, the next one is refused);
5.  group-commit evidence (the batch-size histogram recorded batches);
6.  **graceful shutdown** with a durable checkpoint the database
    reopens from.

Prints one ``ok: …`` line per check; exits non-zero on the first
failure.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from ..obs.metrics import (SERVER_ADMISSION_REJECTS_TOTAL,
                           SERVER_GROUP_COMMIT_BATCH, SERVER_TIMEOUTS_TOTAL)
from .client import ServerClient, ServerError
from .server import Server, ServerThread


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, label: str) -> None:
    if not condition:
        raise SmokeFailure(label)
    print("ok: %s" % label, flush=True)


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    dbdir = os.path.join(tmp, "db")
    server = Server(dbdir, queue_depth=2, query_timeout=10.0,
                    metrics_port=0)
    server.db.register_function("snooze",
                                lambda s: (time.sleep(s), s)[1])
    rejects_before = SERVER_ADMISSION_REJECTS_TOTAL.value()
    timeouts_before = SERVER_TIMEOUTS_TOTAL.value()

    with ServerThread(server):
        port = server.port
        with ServerClient(port) as a, ServerClient(port) as b:
            # 1. DDL + writes + reads across connections.
            a.execute("define type Emp: ( name: string, sal: int4 )")
            a.execute("create Emps: { ref Emp }")
            for name, sal in (("ann", 10), ("bob", 20)):
                a.execute("append to Emps (name = $n, sal = $s)",
                          params={"n": name, "s": sal})
            rows = b.execute(
                "retrieve (e.name) from e in Emps").rows()
            check(len(rows) == 2, "cross-connection read sees 2 rows")

            # 2. Explicit transaction + snapshot isolation.
            a.begin()
            a.execute('append to Emps (name = "cy", sal = 30)')
            outside = b.execute("retrieve (e.name) from e in Emps",
                                timeout=5.0).rows()
            check(len(outside) == 2,
                  "reader is isolated from the open transaction")
            inside = a.execute("retrieve (e.name) from e in Emps").rows()
            check(len(inside) == 3,
                  "transaction reads its own uncommitted write")

            # 4 (while the txn still holds the writer): pipelined
            # writes fill the depth-2 queue; the third is refused.
            with ServerClient(port) as w1, ServerClient(port) as w2, \
                    ServerClient(port) as w3:
                w1.send('append to Emps (name = "q1", sal = 1)')
                w2.send('append to Emps (name = "q2", sal = 2)')
                time.sleep(0.3)  # let both enqueue behind the txn
                try:
                    w3.execute('append to Emps (name = "q3", sal = 3)')
                    check(False, "admission control rejects when saturated")
                except ServerError as exc:
                    check(exc.code == "admission",
                          "admission control rejects when saturated")
                a.commit()
                check(w1.recv().kind == "append",
                      "queued write 1 completes after commit")
                check(w2.recv().kind == "append",
                      "queued write 2 completes after commit")
            check(SERVER_ADMISSION_REJECTS_TOTAL.value() > rejects_before,
                  "admission rejections are counted")

            total = b.execute("retrieve (e.name) from e in Emps").rows()
            check(len(total) == 5, "commit + queued writes all visible")

            # 3. Per-query timeout on a slow read.
            try:
                b.execute("retrieve (snooze(2))", timeout=0.2)
                check(False, "slow query times out")
            except ServerError as exc:
                check(exc.code == "timeout", "slow query times out")
            check(SERVER_TIMEOUTS_TOTAL.value() > timeouts_before,
                  "timeouts are counted")
            after = b.execute("retrieve (e.sal) from e in Emps").rows()
            check(len(after) == 5, "server still serves after a timeout")

            # 5. Group commit left evidence in the batch histogram.
            samples = SERVER_GROUP_COMMIT_BATCH.to_json()["values"]
            check(samples and samples[0]["count"] > 0,
                  "group-commit batches were recorded")

    # 6. Graceful shutdown checkpointed; the directory reopens whole.
    check(os.path.exists(os.path.join(dbdir, "snapshot.json")),
          "shutdown wrote a checkpoint")
    from .. import connect
    conn = connect(dbdir)
    names = sorted(t.fields[0][1] for t in
                   conn.execute("retrieve (e.name) from e in Emps").rows())
    check(names == ["ann", "bob", "cy", "q1", "q2"],
          "reopened database holds every acknowledged write")
    print("serve-smoke: all checks passed", flush=True)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as exc:
        print("FAIL: %s" % exc, file=sys.stderr)
        sys.exit(1)
