"""A tiny HTTP endpoint for observability: /metrics and friends.

Serves the process-wide metrics registry (Prometheus text exposition
on ``/metrics``, JSON on ``/metrics.json``), the server's operational
snapshot on ``/stats``, the shared slow-query log grouped by client on
``/slowlog``, and a liveness probe on ``/healthz``.  GET only, one
request per connection — deliberately too small to need a framework.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..obs.metrics import REGISTRY

__all__ = ["MetricsHTTP"]


class MetricsHTTP:
    """The /metrics listener riding next to a :class:`~.server.Server`."""

    def __init__(self, server, host: str, port: int):
        self.server = server
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._tcp: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._tcp = await asyncio.start_server(self._handle, self.host,
                                               self.port)
        sock = self._tcp.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        self.port = sock[1]

    async def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()

    async def _handle(self, reader: "asyncio.StreamReader",
                      writer: "asyncio.StreamWriter") -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 10.0)
            while True:  # drain headers
                header = await asyncio.wait_for(reader.readline(), 10.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            if len(parts) < 2 or parts[0] != b"GET":
                await self._respond(writer, 405, "text/plain",
                                    "only GET is supported\n")
                return
            path = parts[1].decode("latin-1").split("?", 1)[0]
            await self._route(writer, path)
        except (asyncio.TimeoutError, ConnectionError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _route(self, writer, path: str) -> None:
        if path == "/metrics":
            await self._respond(writer, 200,
                                "text/plain; version=0.0.4",
                                REGISTRY.to_prometheus())
        elif path == "/metrics.json":
            await self._respond(writer, 200, "application/json",
                                json.dumps(REGISTRY.to_json(), indent=1))
        elif path == "/stats":
            await self._respond(writer, 200, "application/json",
                                json.dumps(self.server.stats(), indent=1))
        elif path == "/slowlog":
            grouped = {client or "(local)":
                       [entry.to_dict() for entry in entries]
                       for client, entries
                       in self.server.slow_log.by_client().items()}
            await self._respond(writer, 200, "application/json",
                                json.dumps(grouped, indent=1))
        elif path == "/healthz":
            await self._respond(writer, 200, "text/plain", "ok\n")
        else:
            await self._respond(writer, 404, "text/plain",
                                "no route %s\n" % path)

    @staticmethod
    async def _respond(writer, status: int, content_type: str,
                       body: str) -> None:
        payload = body.encode("utf-8")
        reason = {200: "OK", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: close\r\n\r\n"
                % (status, reason, content_type, len(payload)))
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
